#ifndef MQA_INDEX_SPATIAL_INDEX_H_
#define MQA_INDEX_SPATIAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "geo/bbox.h"

namespace mqa {

/// Which spatial-index backend candidate generation uses. Exposed through
/// AssignerOptions and SimulatorConfig; see src/index/README.md for when
/// each backend wins.
enum class IndexBackend {
  /// Grid above a small workload threshold, brute force below it.
  kAuto,
  /// Linear scan; preserves the seed's O(|W|*|T|) enumeration exactly.
  kBruteForce,
  /// Uniform grid with cell-bucketed entities; near-linear candidate
  /// generation when reach radii are small relative to the data space.
  kGrid,
  /// R*-tree whose node boxes adapt to the data; the backend for skewed
  /// (Zipf / Gaussian-cluster) distributions where the grid's fixed
  /// resolution goes unbalanced. Never picked by kAuto — opt in.
  kRTree,
};

/// Short display name ("AUTO", "BRUTE", "GRID", "RTREE").
const char* IndexBackendToString(IndexBackend backend);

/// One indexed entity: an external id (task index, slot number, ...) and
/// its location box. Current entities are degenerate (point) boxes,
/// predicted entities are uniform-kernel boxes.
struct IndexEntry {
  int64_t id = -1;
  BBox box;

  /// Upper bound on the entity's remaining deadline, used by
  /// QueryReachable to prune entries (and, in GridIndex, whole cells) a
  /// worker cannot reach in time. Infinity — the default — disables
  /// pruning for the entry; a *stale* (too large) value only weakens
  /// pruning, never correctness, which is what lets TaskIndexCache keep
  /// carried-over tasks bucketed while their deadlines tick down.
  double deadline = std::numeric_limits<double>::infinity();
};

/// Non-owning callable references used by the query visitors; avoid a
/// std::function allocation in the pair-generation inner loop.
///
/// Radius queries pass the exact min-distance they already computed for
/// the filter, so callers (e.g. BuildPairPool's reachability test) need
/// not recompute it.
class RadiusVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, RadiusVisitor>>>
  RadiusVisitor(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, int64_t id, const BBox& box, double min_dist) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(id, box, min_dist);
        }) {}

  void operator()(int64_t id, const BBox& box, double min_dist) const {
    call_(obj_, id, box, min_dist);
  }

 private:
  void* obj_;
  void (*call_)(void*, int64_t, const BBox&, double);
};

class RectVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, RectVisitor>>>
  RectVisitor(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, int64_t id, const BBox& box) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(id, box);
        }) {}

  void operator()(int64_t id, const BBox& box) const { call_(obj_, id, box); }

 private:
  void* obj_;
  void (*call_)(void*, int64_t, const BBox&);
};

/// A spatial index over entity location boxes in the unit data space.
/// Backends answer radius and rectangle queries with *exact* min-distance
/// and intersection semantics: the set of visited entries is identical
/// across backends (property-tested), only the work done differs.
///
/// Visit order is backend-specific; callers that need determinism across
/// backends must sort the visited ids.
///
/// Thread-safety: the query methods (everything const) read shared state
/// without mutation, so any number of threads may query one index
/// concurrently — the parallel pair-generation path relies on this. The
/// mutating methods (BulkLoad/Insert/Erase) require exclusive access: no
/// concurrent mutation, no queries concurrent with a mutation. See the
/// "Concurrency" section of src/index/README.md.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Replaces the contents with `entries`.
  virtual void BulkLoad(const std::vector<IndexEntry>& entries) = 0;

  /// Adds one entry.
  virtual void Insert(const IndexEntry& entry) = 0;

  /// Insert with the default (infinite) deadline.
  void Insert(int64_t id, const BBox& box) { Insert(IndexEntry{id, box}); }

  /// Removes the entry previously inserted as (id, box). Returns false
  /// when no such entry exists. `box` must equal the inserted box (the
  /// stored deadline does not participate in matching).
  virtual bool Erase(int64_t id, const BBox& box) = 0;

  /// Visits every entry whose box is within Euclidean min-distance
  /// `radius` of `query` (inclusive; radius 0 selects touching boxes),
  /// passing that min-distance along.
  virtual void QueryRadius(const BBox& query, double radius,
                           const RadiusVisitor& visit) const = 0;

  /// Deadline-aware radius query for reachability scans: visits every
  /// entry with min_dist <= velocity * min(entry.deadline, max_deadline),
  /// i.e. QueryRadius(query, velocity * max_deadline) minus the entries
  /// whose *own* deadline already rules them out. The built-in backends
  /// implement exactly that set (GridIndex prunes whole cells first by
  /// velocity * cell_max_deadline < min-distance-to-cell); the base
  /// implementation is the plain radius superset for backends that do not
  /// store deadlines. Callers must therefore treat the visited set as
  /// "every possibly-reachable entry, maybe a few unreachable ones" and
  /// keep applying their exact filter.
  virtual void QueryReachable(const BBox& query, double velocity,
                              double max_deadline,
                              const RadiusVisitor& visit) const;

  /// Visits every entry whose box intersects `rect` (boundary-inclusive).
  virtual void QueryRect(const BBox& rect, const RectVisitor& visit) const = 0;

  /// Number of entries.
  virtual size_t size() const = 0;

  /// Display name of the backend.
  virtual const char* name() const = 0;
};

/// Workload size (|W| * |T|) below which kAuto picks brute force: at tiny
/// scale the grid's build cost exceeds the scan it saves.
inline constexpr size_t kAutoBruteForceMaxPairs = 64 * 64;

/// Resolves kAuto to a concrete backend for a workload of
/// `num_queries * num_entries` candidate pairs.
IndexBackend ResolveBackend(IndexBackend backend, size_t num_queries,
                            size_t num_entries);

/// Creates an index of the given backend. `backend` must be concrete:
/// resolve kAuto with ResolveBackend first (the single selection rule).
std::unique_ptr<SpatialIndex> CreateSpatialIndex(IndexBackend backend);

}  // namespace mqa

#endif  // MQA_INDEX_SPATIAL_INDEX_H_
