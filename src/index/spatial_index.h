#ifndef MQA_INDEX_SPATIAL_INDEX_H_
#define MQA_INDEX_SPATIAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "geo/bbox.h"

namespace mqa {

/// Which spatial-index backend candidate generation uses. Exposed through
/// AssignerOptions and SimulatorConfig; see src/index/README.md for when
/// each backend wins.
enum class IndexBackend {
  /// Grid above a small workload threshold, brute force below it.
  kAuto,
  /// Linear scan; preserves the seed's O(|W|*|T|) enumeration exactly.
  kBruteForce,
  /// Uniform grid with cell-bucketed entities; near-linear candidate
  /// generation when reach radii are small relative to the data space.
  kGrid,
};

/// Short display name ("AUTO", "BRUTE", "GRID").
const char* IndexBackendToString(IndexBackend backend);

/// One indexed entity: an external id (task index, slot number, ...) and
/// its location box. Current entities are degenerate (point) boxes,
/// predicted entities are uniform-kernel boxes.
struct IndexEntry {
  int64_t id = -1;
  BBox box;
};

/// Non-owning callable references used by the query visitors; avoid a
/// std::function allocation in the pair-generation inner loop.
///
/// Radius queries pass the exact min-distance they already computed for
/// the filter, so callers (e.g. BuildPairPool's reachability test) need
/// not recompute it.
class RadiusVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, RadiusVisitor>>>
  RadiusVisitor(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, int64_t id, const BBox& box, double min_dist) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(id, box, min_dist);
        }) {}

  void operator()(int64_t id, const BBox& box, double min_dist) const {
    call_(obj_, id, box, min_dist);
  }

 private:
  void* obj_;
  void (*call_)(void*, int64_t, const BBox&, double);
};

class RectVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, RectVisitor>>>
  RectVisitor(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, int64_t id, const BBox& box) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(id, box);
        }) {}

  void operator()(int64_t id, const BBox& box) const { call_(obj_, id, box); }

 private:
  void* obj_;
  void (*call_)(void*, int64_t, const BBox&);
};

/// A spatial index over entity location boxes in the unit data space.
/// Backends answer radius and rectangle queries with *exact* min-distance
/// and intersection semantics: the set of visited entries is identical
/// across backends (property-tested), only the work done differs.
///
/// Visit order is backend-specific; callers that need determinism across
/// backends must sort the visited ids.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Replaces the contents with `entries`.
  virtual void BulkLoad(const std::vector<IndexEntry>& entries) = 0;

  /// Adds one entry.
  virtual void Insert(int64_t id, const BBox& box) = 0;

  /// Removes the entry previously inserted as (id, box). Returns false
  /// when no such entry exists. `box` must equal the inserted box.
  virtual bool Erase(int64_t id, const BBox& box) = 0;

  /// Visits every entry whose box is within Euclidean min-distance
  /// `radius` of `query` (inclusive; radius 0 selects touching boxes),
  /// passing that min-distance along.
  virtual void QueryRadius(const BBox& query, double radius,
                           const RadiusVisitor& visit) const = 0;

  /// Visits every entry whose box intersects `rect` (boundary-inclusive).
  virtual void QueryRect(const BBox& rect, const RectVisitor& visit) const = 0;

  /// Number of entries.
  virtual size_t size() const = 0;

  /// Display name of the backend.
  virtual const char* name() const = 0;
};

/// Workload size (|W| * |T|) below which kAuto picks brute force: at tiny
/// scale the grid's build cost exceeds the scan it saves.
inline constexpr size_t kAutoBruteForceMaxPairs = 64 * 64;

/// Resolves kAuto to a concrete backend for a workload of
/// `num_queries * num_entries` candidate pairs.
IndexBackend ResolveBackend(IndexBackend backend, size_t num_queries,
                            size_t num_entries);

/// Creates an index of the given backend. `backend` must be concrete:
/// resolve kAuto with ResolveBackend first (the single selection rule).
std::unique_ptr<SpatialIndex> CreateSpatialIndex(IndexBackend backend);

}  // namespace mqa

#endif  // MQA_INDEX_SPATIAL_INDEX_H_
