#ifndef MQA_INDEX_ENTITY_INDEX_CACHE_H_
#define MQA_INDEX_ENTITY_INDEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "index/spatial_index.h"

namespace mqa {

/// Maintains an entity spatial index *across* simulation epochs so the
/// per-epoch index cost is proportional to the churn, not the pool. This
/// is the machinery behind TaskIndexCache (tasks) and WorkerIndexCache
/// (workers): the two instantiations differ only in how an entity maps to
/// an (id, location box, pruning bound) triple, expressed by `Traits`:
///
///   struct Traits {
///     static int64_t id(const Entity&);
///     static const BBox& box(const Entity&);
///     static double bound(const Entity&);  // IndexEntry::deadline slot
///   };
///
/// Entities carried over between epochs keep their buckets: on each
/// BeginInstance the incoming entity vector is matched against the live
/// entries by (id, location box); only arrivals are inserted and only
/// departures erased. Entries are stored under stable internal slots;
/// view() exposes a read-only SpatialIndex whose ids are positions in the
/// entity vector most recently passed to BeginInstance.
///
/// Pruning bounds: entries are inserted with Traits::bound at first
/// sight. A carried-over entity whose true bound shrinks over time (a
/// task's remaining deadline) keeps the inserted value — a stale *upper
/// bound*, which QueryReachable pruning tolerates by design (stale maxima
/// only weaken pruning; the exact downstream filter stays authoritative).
///
/// Concurrency: BeginInstance mutates the cache and must be exclusive;
/// between BeginInstance calls, view() queries are const pass-throughs
/// and safe from any number of threads concurrently.
template <typename Entity, typename Traits>
class EntityIndexCache {
 public:
  /// kAuto resolves to the grid backend (the cache only pays off at the
  /// scales where the grid wins); any concrete backend — grid, brute,
  /// R*-tree — passes through, so every cache instantiation (and the
  /// streaming engine's incremental maintenance) gets new backends for
  /// free.
  explicit EntityIndexCache(IndexBackend backend = IndexBackend::kAuto)
      : index_(CreateSpatialIndex(backend == IndexBackend::kAuto
                                      ? IndexBackend::kGrid
                                      : backend)),
        view_(std::make_unique<View>()) {}

  /// Syncs the cache to `entities` (the full epoch vector, current plus
  /// predicted). Invalidates the previous view().
  void BeginInstance(const std::vector<Entity>& entities) {
    if (live_.empty()) {
      // Nothing to carry over (first epoch, or the no-reuse baseline):
      // one bulk build at the right resolution instead of incremental
      // insert/rebalance churn.
      slot_boxes_.clear();
      free_slots_.clear();
      slot_to_index_.resize(entities.size());
      std::vector<IndexEntry> entries;
      entries.reserve(entities.size());
      for (size_t j = 0; j < entities.size(); ++j) {
        const Entity& e = entities[j];
        slot_boxes_.push_back(Traits::box(e));
        entries.push_back(
            {static_cast<int64_t>(j), Traits::box(e), Traits::bound(e)});
        live_.emplace(Traits::id(e), static_cast<int32_t>(j));
        slot_to_index_[j] = static_cast<int32_t>(j);
      }
      index_->BulkLoad(entries);
      view_->Reset(index_.get(), &slot_to_index_, entities.size());
      return;
    }

    // Every live slot was allocated before this call, so `claimed` sized
    // to the current slot store covers them all.
    std::vector<char> claimed(slot_boxes_.size(), 0);
    std::unordered_multimap<int64_t, int32_t> next_live;
    next_live.reserve(entities.size());

    slot_to_index_.assign(slot_boxes_.size(), -1);
    for (size_t j = 0; j < entities.size(); ++j) {
      const Entity& e = entities[j];
      int32_t slot = -1;
      auto range = live_.equal_range(Traits::id(e));
      for (auto it = range.first; it != range.second; ++it) {
        const int32_t s = it->second;
        if (!claimed[static_cast<size_t>(s)] &&
            slot_boxes_[static_cast<size_t>(s)] == Traits::box(e)) {
          slot = s;
          claimed[static_cast<size_t>(s)] = 1;
          break;
        }
      }
      if (slot < 0) {
        slot = AllocateSlot(Traits::box(e));
        // Carried-over entities keep the bound they were inserted with
        // even as the true bound shrinks — a stale *upper bound*, which
        // QueryReachable's pruning tolerates by design (it only ever
        // makes pruning less sharp, never wrong).
        index_->Insert({slot, Traits::box(e), Traits::bound(e)});
        if (static_cast<size_t>(slot) < claimed.size()) {
          claimed[static_cast<size_t>(slot)] = 1;  // reused a freed slot
        }
      }
      next_live.emplace(Traits::id(e), slot);
      if (static_cast<size_t>(slot) >= slot_to_index_.size()) {
        slot_to_index_.resize(static_cast<size_t>(slot) + 1, -1);
      }
      slot_to_index_[static_cast<size_t>(slot)] = static_cast<int32_t>(j);
    }

    // Departures: live entries nothing claimed this epoch.
    for (const auto& [id, slot] : live_) {
      if (claimed[static_cast<size_t>(slot)]) continue;
      const bool erased =
          index_->Erase(slot, slot_boxes_[static_cast<size_t>(slot)]);
      MQA_CHECK(erased) << "entity index cache out of sync at slot " << slot;
      free_slots_.push_back(slot);
    }
    live_ = std::move(next_live);

    view_->Reset(index_.get(), &slot_to_index_, entities.size());
  }

  /// Index over the entities of the last BeginInstance call; entry ids
  /// are indices into that vector. Valid until the next BeginInstance.
  const SpatialIndex* view() const { return view_.get(); }

  /// Entries currently bucketed in the underlying index.
  size_t size() const { return index_->size(); }

 private:
  /// Read-only adapter translating internal slots to epoch entity
  /// indices. Queries are const pass-throughs to the underlying index, so
  /// the view inherits its concurrency guarantee: any number of threads
  /// may query one view concurrently between BeginInstance calls.
  class View final : public SpatialIndex {
   public:
    void Reset(const SpatialIndex* index,
               const std::vector<int32_t>* slot_to_index, size_t num_entities) {
      index_ = index;
      slot_to_index_ = slot_to_index;
      num_entities_ = num_entities;
    }

    void BulkLoad(const std::vector<IndexEntry>&) override {
      MQA_CHECK(false) << "EntityIndexCache view is read-only";
    }
    using SpatialIndex::Insert;
    void Insert(const IndexEntry&) override {
      MQA_CHECK(false) << "EntityIndexCache view is read-only";
    }
    bool Erase(int64_t, const BBox&) override {
      MQA_CHECK(false) << "EntityIndexCache view is read-only";
      return false;
    }

    void QueryRadius(const BBox& query, double radius,
                     const RadiusVisitor& visit) const override {
      index_->QueryRadius(
          query, radius, [&](int64_t slot, const BBox& box, double min_dist) {
            visit((*slot_to_index_)[static_cast<size_t>(slot)], box, min_dist);
          });
    }

    void QueryReachable(const BBox& query, double velocity, double max_deadline,
                        const RadiusVisitor& visit) const override {
      index_->QueryReachable(
          query, velocity, max_deadline,
          [&](int64_t slot, const BBox& box, double min_dist) {
            visit((*slot_to_index_)[static_cast<size_t>(slot)], box, min_dist);
          });
    }

    void QueryRect(const BBox& rect, const RectVisitor& visit) const override {
      index_->QueryRect(rect, [&](int64_t slot, const BBox& box) {
        visit((*slot_to_index_)[static_cast<size_t>(slot)], box);
      });
    }

    size_t size() const override { return num_entities_; }
    const char* name() const override { return index_->name(); }

   private:
    const SpatialIndex* index_ = nullptr;
    const std::vector<int32_t>* slot_to_index_ = nullptr;
    size_t num_entities_ = 0;
  };

  int32_t AllocateSlot(const BBox& box) {
    if (!free_slots_.empty()) {
      const int32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slot_boxes_[static_cast<size_t>(slot)] = box;
      return slot;
    }
    slot_boxes_.push_back(box);
    return static_cast<int32_t>(slot_boxes_.size() - 1);
  }

  std::unique_ptr<SpatialIndex> index_;  // entry ids are internal slots
  std::vector<BBox> slot_boxes_;
  std::vector<int32_t> free_slots_;
  // Live (id -> slot) entries of the previous epoch; multimap so a
  // malformed stream with duplicate ids degrades to churn, not corruption.
  std::unordered_multimap<int64_t, int32_t> live_;
  std::vector<int32_t> slot_to_index_;
  std::unique_ptr<View> view_;
};

}  // namespace mqa

#endif  // MQA_INDEX_ENTITY_INDEX_CACHE_H_
