#ifndef MQA_INDEX_ENTITY_INDEX_CACHE_H_
#define MQA_INDEX_ENTITY_INDEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "index/spatial_index.h"

namespace mqa {

/// What one EntityIndexCache::BeginInstance call did to its index, for
/// the epoch telemetry (mqa.index.* counters).
struct IndexChurnStats {
  /// Entities matched to a live entry (kept their bucket).
  int64_t carried = 0;
  /// Arrivals (no live match) and departures (live entry not matched).
  int64_t inserted = 0;
  int64_t erased = 0;
  /// True when the insert+erase volume crossed the rebuild threshold and
  /// the cache bulk-rebuilt instead of churning entries one by one.
  bool bulk_rebuilt = false;
};

/// Maintains an entity spatial index *across* simulation epochs so the
/// per-epoch index cost is proportional to the churn, not the pool. This
/// is the machinery behind TaskIndexCache (tasks) and WorkerIndexCache
/// (workers): the two instantiations differ only in how an entity maps to
/// an (id, location box, pruning bound) triple, expressed by `Traits`:
///
///   struct Traits {
///     static int64_t id(const Entity&);
///     static const BBox& box(const Entity&);
///     static double bound(const Entity&);  // IndexEntry::deadline slot
///   };
///
/// Entities carried over between epochs keep their buckets: on each
/// BeginInstance the incoming entity vector is matched against the live
/// entries by (id, location box); only arrivals are inserted and only
/// departures erased. Entries are stored under stable internal slots;
/// view() exposes a read-only SpatialIndex whose ids are positions in the
/// entity vector most recently passed to BeginInstance.
///
/// Pruning bounds: entries are inserted with Traits::bound at first
/// sight. A carried-over entity whose true bound shrinks over time (a
/// task's remaining deadline) keeps the inserted value — a stale *upper
/// bound*, which QueryReachable pruning tolerates by design (stale maxima
/// only weaken pruning; the exact downstream filter stays authoritative).
///
/// Rebuild break-even: per-entry churn beats a rebuild only while the
/// churn is small. Past rebuild_threshold() (default: insert+erase volume
/// above 50% of the incoming vector) BeginInstance bulk-rebuilds the warm
/// index instead — one BulkLoad at the right grid resolution, with
/// *refreshed* pruning bounds (refreshing only sharpens pruning; query
/// result sets are unchanged because the downstream exact filter is
/// authoritative either way). The decision is made from a pure matching
/// pass, so the mutation cost is paid exactly once either way.
///
/// Concurrency: BeginInstance mutates the cache and must be exclusive;
/// between BeginInstance calls, view() queries are const pass-throughs
/// and safe from any number of threads concurrently.
template <typename Entity, typename Traits>
class EntityIndexCache {
 public:
  /// kAuto resolves to the grid backend (the cache only pays off at the
  /// scales where the grid wins); any concrete backend — grid, brute,
  /// R*-tree — passes through, so every cache instantiation (and the
  /// streaming engine's incremental maintenance) gets new backends for
  /// free.
  explicit EntityIndexCache(IndexBackend backend = IndexBackend::kAuto)
      : index_(CreateSpatialIndex(backend == IndexBackend::kAuto
                                      ? IndexBackend::kGrid
                                      : backend)),
        view_(std::make_unique<View>()) {}

  /// Syncs the cache to `entities` (the full epoch vector, current plus
  /// predicted). Invalidates the previous view().
  void BeginInstance(const std::vector<Entity>& entities) {
    if (live_.empty()) {
      // Nothing to carry over (first epoch, or the no-reuse baseline).
      last_churn_ = IndexChurnStats{};
      last_churn_.inserted = static_cast<int64_t>(entities.size());
      BulkRebuild(entities);
      return;
    }

    // Pass 1 — pure matching (no index mutation): resolve every entity
    // to a live slot or -1, and count the churn the sync would cost.
    // Every live slot was allocated before this call, so `claimed` sized
    // to the current slot store covers them all.
    std::vector<char> claimed(slot_boxes_.size(), 0);
    match_.assign(entities.size(), -1);
    size_t matched = 0;
    for (size_t j = 0; j < entities.size(); ++j) {
      const Entity& e = entities[j];
      auto range = live_.equal_range(Traits::id(e));
      for (auto it = range.first; it != range.second; ++it) {
        const int32_t s = it->second;
        if (!claimed[static_cast<size_t>(s)] &&
            slot_boxes_[static_cast<size_t>(s)] == Traits::box(e)) {
          match_[j] = s;
          claimed[static_cast<size_t>(s)] = 1;
          ++matched;
          break;
        }
      }
    }
    const size_t inserts = entities.size() - matched;
    const size_t erases = live_.size() - matched;
    last_churn_ = IndexChurnStats{};
    last_churn_.carried = static_cast<int64_t>(matched);
    last_churn_.inserted = static_cast<int64_t>(inserts);
    last_churn_.erased = static_cast<int64_t>(erases);

    // Break-even: past the threshold, per-entry Insert/Erase (plus the
    // grid imbalance a drifted population accumulates) costs more than
    // one bulk build at a freshly tuned resolution.
    if (static_cast<double>(inserts + erases) >
        rebuild_threshold_ * static_cast<double>(entities.size())) {
      last_churn_.bulk_rebuilt = true;
      live_.clear();
      BulkRebuild(entities);
      return;
    }

    // Pass 2 — apply: insert arrivals, then erase departures (in that
    // order so freed slots are never handed to this epoch's arrivals,
    // matching the historical slot-numbering behavior).
    std::unordered_multimap<int64_t, int32_t> next_live;
    next_live.reserve(entities.size());
    slot_to_index_.assign(slot_boxes_.size(), -1);
    for (size_t j = 0; j < entities.size(); ++j) {
      const Entity& e = entities[j];
      int32_t slot = match_[j];
      if (slot < 0) {
        slot = AllocateSlot(Traits::box(e));
        // Carried-over entities keep the bound they were inserted with
        // even as the true bound shrinks — a stale *upper bound*, which
        // QueryReachable's pruning tolerates by design (it only ever
        // makes pruning less sharp, never wrong).
        index_->Insert({slot, Traits::box(e), Traits::bound(e)});
        if (static_cast<size_t>(slot) < claimed.size()) {
          claimed[static_cast<size_t>(slot)] = 1;  // reused a freed slot
        }
      }
      next_live.emplace(Traits::id(e), slot);
      if (static_cast<size_t>(slot) >= slot_to_index_.size()) {
        slot_to_index_.resize(static_cast<size_t>(slot) + 1, -1);
      }
      slot_to_index_[static_cast<size_t>(slot)] = static_cast<int32_t>(j);
    }

    // Departures: live entries nothing claimed this epoch.
    for (const auto& [id, slot] : live_) {
      if (claimed[static_cast<size_t>(slot)]) continue;
      const bool erased =
          index_->Erase(slot, slot_boxes_[static_cast<size_t>(slot)]);
      MQA_CHECK(erased) << "entity index cache out of sync at slot " << slot;
      free_slots_.push_back(slot);
    }
    live_ = std::move(next_live);

    view_->Reset(index_.get(), &slot_to_index_, entities.size());
  }

  /// What the last BeginInstance did (churn counts, rebuild decision).
  const IndexChurnStats& last_churn() const { return last_churn_; }

  /// Churn volume (inserts + erases) as a fraction of the incoming entity
  /// vector above which BeginInstance bulk-rebuilds. 0 rebuilds on any
  /// churn; anything >= 2 never rebuilds a warm index (volume is bounded
  /// by entities + previous entries).
  double rebuild_threshold() const { return rebuild_threshold_; }
  void set_rebuild_threshold(double threshold) {
    rebuild_threshold_ = threshold;
  }

  /// Index over the entities of the last BeginInstance call; entry ids
  /// are indices into that vector. Valid until the next BeginInstance.
  const SpatialIndex* view() const { return view_.get(); }

  /// Entries currently bucketed in the underlying index.
  size_t size() const { return index_->size(); }

 private:
  /// Read-only adapter translating internal slots to epoch entity
  /// indices. Queries are const pass-throughs to the underlying index, so
  /// the view inherits its concurrency guarantee: any number of threads
  /// may query one view concurrently between BeginInstance calls.
  class View final : public SpatialIndex {
   public:
    void Reset(const SpatialIndex* index,
               const std::vector<int32_t>* slot_to_index, size_t num_entities) {
      index_ = index;
      slot_to_index_ = slot_to_index;
      num_entities_ = num_entities;
    }

    void BulkLoad(const std::vector<IndexEntry>&) override {
      MQA_CHECK(false) << "EntityIndexCache view is read-only";
    }
    using SpatialIndex::Insert;
    void Insert(const IndexEntry&) override {
      MQA_CHECK(false) << "EntityIndexCache view is read-only";
    }
    bool Erase(int64_t, const BBox&) override {
      MQA_CHECK(false) << "EntityIndexCache view is read-only";
      return false;
    }

    void QueryRadius(const BBox& query, double radius,
                     const RadiusVisitor& visit) const override {
      index_->QueryRadius(
          query, radius, [&](int64_t slot, const BBox& box, double min_dist) {
            visit((*slot_to_index_)[static_cast<size_t>(slot)], box, min_dist);
          });
    }

    void QueryReachable(const BBox& query, double velocity, double max_deadline,
                        const RadiusVisitor& visit) const override {
      index_->QueryReachable(
          query, velocity, max_deadline,
          [&](int64_t slot, const BBox& box, double min_dist) {
            visit((*slot_to_index_)[static_cast<size_t>(slot)], box, min_dist);
          });
    }

    void QueryRect(const BBox& rect, const RectVisitor& visit) const override {
      index_->QueryRect(rect, [&](int64_t slot, const BBox& box) {
        visit((*slot_to_index_)[static_cast<size_t>(slot)], box);
      });
    }

    size_t size() const override { return num_entities_; }
    const char* name() const override { return index_->name(); }

   private:
    const SpatialIndex* index_ = nullptr;
    const std::vector<int32_t>* slot_to_index_ = nullptr;
    size_t num_entities_ = 0;
  };

  /// One bulk build at the right resolution instead of incremental
  /// insert/rebalance churn: replaces the slot store (slot j = entity j)
  /// and loads every entity with a *fresh* pruning bound. Callers must
  /// clear live_ first (or have it empty).
  void BulkRebuild(const std::vector<Entity>& entities) {
    slot_boxes_.clear();
    free_slots_.clear();
    slot_to_index_.assign(entities.size(), -1);
    std::vector<IndexEntry> entries;
    entries.reserve(entities.size());
    for (size_t j = 0; j < entities.size(); ++j) {
      const Entity& e = entities[j];
      slot_boxes_.push_back(Traits::box(e));
      entries.push_back(
          {static_cast<int64_t>(j), Traits::box(e), Traits::bound(e)});
      live_.emplace(Traits::id(e), static_cast<int32_t>(j));
      slot_to_index_[j] = static_cast<int32_t>(j);
    }
    index_->BulkLoad(entries);
    view_->Reset(index_.get(), &slot_to_index_, entities.size());
  }

  int32_t AllocateSlot(const BBox& box) {
    if (!free_slots_.empty()) {
      const int32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slot_boxes_[static_cast<size_t>(slot)] = box;
      return slot;
    }
    slot_boxes_.push_back(box);
    return static_cast<int32_t>(slot_boxes_.size() - 1);
  }

  std::unique_ptr<SpatialIndex> index_;  // entry ids are internal slots
  std::vector<BBox> slot_boxes_;
  std::vector<int32_t> free_slots_;
  // Live (id -> slot) entries of the previous epoch; multimap so a
  // malformed stream with duplicate ids degrades to churn, not corruption.
  std::unordered_multimap<int64_t, int32_t> live_;
  std::vector<int32_t> slot_to_index_;
  std::vector<int32_t> match_;  // pass-1 scratch, capacity recycled
  std::unique_ptr<View> view_;
  IndexChurnStats last_churn_;
  double rebuild_threshold_ = 0.5;
};

}  // namespace mqa

#endif  // MQA_INDEX_ENTITY_INDEX_CACHE_H_
