#ifndef MQA_INDEX_BRUTE_FORCE_INDEX_H_
#define MQA_INDEX_BRUTE_FORCE_INDEX_H_

#include <vector>

#include "index/spatial_index.h"

namespace mqa {

/// Linear-scan SpatialIndex: queries test every entry. This is the seed's
/// candidate enumeration expressed through the index interface — used for
/// tiny instances (where it beats the grid's setup cost) and as the
/// semantics oracle the GridIndex is cross-checked against.
///
/// Concurrency: queries are const and touch no mutable state — safe to
/// run from any number of threads as long as no mutation is in flight.
class BruteForceIndex final : public SpatialIndex {
 public:
  BruteForceIndex() = default;

  void BulkLoad(const std::vector<IndexEntry>& entries) override;
  using SpatialIndex::Insert;
  void Insert(const IndexEntry& entry) override;
  bool Erase(int64_t id, const BBox& box) override;
  void QueryRadius(const BBox& query, double radius,
                   const RadiusVisitor& visit) const override;
  void QueryReachable(const BBox& query, double velocity, double max_deadline,
                      const RadiusVisitor& visit) const override;
  void QueryRect(const BBox& rect, const RectVisitor& visit) const override;
  size_t size() const override { return entries_.size(); }
  const char* name() const override { return "BRUTE"; }

 private:
  std::vector<IndexEntry> entries_;
};

}  // namespace mqa

#endif  // MQA_INDEX_BRUTE_FORCE_INDEX_H_
