#ifndef MQA_INDEX_CANDIDATE_SCAN_H_
#define MQA_INDEX_CANDIDATE_SCAN_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "index/spatial_index.h"
#include "model/worker.h"

namespace mqa {

/// The candidate-task scan shared by BuildPairPool and PairStatistics:
/// one deadline-aware radius query (QueryReachable with the worker's
/// velocity, bounded by ReachRadius(worker, max_deadline) — a superset of
/// the CanReach reachability bound) dropping entry ids >= `id_limit`
/// (an external index may cover more tasks than participate), then
/// visiting survivors as fn(task_index, min_dist) in ascending id order.
/// The sort keeps pools and statistics bit-identical across backends and
/// matches the seed's double-loop accumulation order; callers apply the
/// exact ProblemInstance::CanReachAtDistance test with the min-distance
/// handed through — QueryReachable only sheds candidates that test would
/// reject anyway (entries whose own deadline is too short for this
/// velocity, pruned per cell and per entry). `scratch` avoids per-worker
/// reallocation.
template <typename Fn>
void ForEachReachableCandidate(
    const SpatialIndex& index, const Worker& worker, double max_deadline,
    size_t id_limit, std::vector<std::pair<int32_t, double>>* scratch,
    Fn&& fn) {
  if (worker.velocity <= 0.0) return;  // CanReach rejects every task
  scratch->clear();
  index.QueryReachable(worker.location, worker.velocity, max_deadline,
                       [&](int64_t id, const BBox&, double min_dist) {
                         if (static_cast<size_t>(id) < id_limit) {
                           scratch->emplace_back(static_cast<int32_t>(id),
                                                 min_dist);
                         }
                       });
  std::sort(scratch->begin(), scratch->end());
  for (const auto& [id, min_dist] : *scratch) fn(id, min_dist);
}

}  // namespace mqa

#endif  // MQA_INDEX_CANDIDATE_SCAN_H_
