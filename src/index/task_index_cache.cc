#include "index/task_index_cache.h"

#include <utility>

#include "common/logging.h"

namespace mqa {

/// Read-only adapter translating internal slots to instance task indices.
/// Queries are const pass-throughs to the underlying index, so the view
/// inherits its concurrency guarantee: any number of threads may query
/// one view concurrently between BeginInstance calls.
class TaskIndexCache::View final : public SpatialIndex {
 public:
  void Reset(const SpatialIndex* index, const std::vector<int32_t>* slot_to_index,
             size_t num_tasks) {
    index_ = index;
    slot_to_index_ = slot_to_index;
    num_tasks_ = num_tasks;
  }

  void BulkLoad(const std::vector<IndexEntry>&) override {
    MQA_CHECK(false) << "TaskIndexCache view is read-only";
  }
  using SpatialIndex::Insert;
  void Insert(const IndexEntry&) override {
    MQA_CHECK(false) << "TaskIndexCache view is read-only";
  }
  bool Erase(int64_t, const BBox&) override {
    MQA_CHECK(false) << "TaskIndexCache view is read-only";
    return false;
  }

  void QueryRadius(const BBox& query, double radius,
                   const RadiusVisitor& visit) const override {
    index_->QueryRadius(
        query, radius, [&](int64_t slot, const BBox& box, double min_dist) {
          visit((*slot_to_index_)[static_cast<size_t>(slot)], box, min_dist);
        });
  }

  void QueryReachable(const BBox& query, double velocity, double max_deadline,
                      const RadiusVisitor& visit) const override {
    index_->QueryReachable(
        query, velocity, max_deadline,
        [&](int64_t slot, const BBox& box, double min_dist) {
          visit((*slot_to_index_)[static_cast<size_t>(slot)], box, min_dist);
        });
  }

  void QueryRect(const BBox& rect, const RectVisitor& visit) const override {
    index_->QueryRect(rect, [&](int64_t slot, const BBox& box) {
      visit((*slot_to_index_)[static_cast<size_t>(slot)], box);
    });
  }

  size_t size() const override { return num_tasks_; }
  const char* name() const override { return index_->name(); }

 private:
  const SpatialIndex* index_ = nullptr;
  const std::vector<int32_t>* slot_to_index_ = nullptr;
  size_t num_tasks_ = 0;
};

TaskIndexCache::TaskIndexCache(IndexBackend backend)
    : index_(CreateSpatialIndex(backend == IndexBackend::kAuto
                                    ? IndexBackend::kGrid
                                    : backend)),
      view_(std::make_unique<View>()) {}

TaskIndexCache::~TaskIndexCache() = default;

int32_t TaskIndexCache::AllocateSlot(const BBox& box) {
  if (!free_slots_.empty()) {
    const int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slot_boxes_[static_cast<size_t>(slot)] = box;
    return slot;
  }
  slot_boxes_.push_back(box);
  return static_cast<int32_t>(slot_boxes_.size() - 1);
}

void TaskIndexCache::BeginInstance(const std::vector<Task>& tasks) {
  if (live_.empty()) {
    // Nothing to carry over (first instance, or the no-reuse baseline):
    // one bulk build at the right resolution instead of incremental
    // insert/rebalance churn.
    slot_boxes_.clear();
    free_slots_.clear();
    slot_to_index_.resize(tasks.size());
    std::vector<IndexEntry> entries;
    entries.reserve(tasks.size());
    for (size_t j = 0; j < tasks.size(); ++j) {
      slot_boxes_.push_back(tasks[j].location);
      entries.push_back(
          {static_cast<int64_t>(j), tasks[j].location, tasks[j].deadline});
      live_.emplace(tasks[j].id, static_cast<int32_t>(j));
      slot_to_index_[j] = static_cast<int32_t>(j);
    }
    index_->BulkLoad(entries);
    view_->Reset(index_.get(), &slot_to_index_, tasks.size());
    return;
  }

  // Every live slot was allocated before this call, so `claimed` sized to
  // the current slot store covers them all.
  std::vector<char> claimed(slot_boxes_.size(), 0);
  std::unordered_multimap<TaskId, int32_t> next_live;
  next_live.reserve(tasks.size());

  slot_to_index_.assign(slot_boxes_.size(), -1);
  for (size_t j = 0; j < tasks.size(); ++j) {
    const Task& t = tasks[j];
    int32_t slot = -1;
    auto range = live_.equal_range(t.id);
    for (auto it = range.first; it != range.second; ++it) {
      const int32_t s = it->second;
      if (!claimed[static_cast<size_t>(s)] &&
          slot_boxes_[static_cast<size_t>(s)] == t.location) {
        slot = s;
        claimed[static_cast<size_t>(s)] = 1;
        break;
      }
    }
    if (slot < 0) {
      slot = AllocateSlot(t.location);
      // Carried-over tasks keep the deadline they were inserted with even
      // as their remaining deadline ticks down each instance — a stale
      // *upper bound*, which QueryReachable's pruning tolerates by
      // design (it only ever makes pruning less sharp, never wrong).
      index_->Insert({slot, t.location, t.deadline});
      if (static_cast<size_t>(slot) < claimed.size()) {
        claimed[static_cast<size_t>(slot)] = 1;  // reused a freed slot
      }
    }
    next_live.emplace(t.id, slot);
    if (static_cast<size_t>(slot) >= slot_to_index_.size()) {
      slot_to_index_.resize(static_cast<size_t>(slot) + 1, -1);
    }
    slot_to_index_[static_cast<size_t>(slot)] = static_cast<int32_t>(j);
  }

  // Departures: live entries nothing claimed this instance.
  for (const auto& [id, slot] : live_) {
    if (claimed[static_cast<size_t>(slot)]) continue;
    const bool erased = index_->Erase(slot, slot_boxes_[static_cast<size_t>(slot)]);
    MQA_CHECK(erased) << "task index cache out of sync at slot " << slot;
    free_slots_.push_back(slot);
  }
  live_ = std::move(next_live);

  view_->Reset(index_.get(), &slot_to_index_, tasks.size());
}

const SpatialIndex* TaskIndexCache::view() const { return view_.get(); }

}  // namespace mqa
