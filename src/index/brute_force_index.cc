#include "index/brute_force_index.h"

#include <algorithm>

#include "common/logging.h"

namespace mqa {

void BruteForceIndex::BulkLoad(const std::vector<IndexEntry>& entries) {
  entries_ = entries;
}

void BruteForceIndex::Insert(const IndexEntry& entry) {
  entries_.push_back(entry);
}

bool BruteForceIndex::Erase(int64_t id, const BBox& box) {
  for (size_t k = 0; k < entries_.size(); ++k) {
    if (entries_[k].id == id && entries_[k].box == box) {
      entries_[k] = entries_.back();
      entries_.pop_back();
      return true;
    }
  }
  return false;
}

void BruteForceIndex::QueryRadius(const BBox& query, double radius,
                                  const RadiusVisitor& visit) const {
  // Same contract violation handling as GridIndex — backends must not
  // diverge on invalid input either.
  MQA_CHECK(radius >= 0.0) << "negative query radius " << radius;
  for (const IndexEntry& e : entries_) {
    const double min_dist = query.MinDistance(e.box);
    if (min_dist <= radius) visit(e.id, e.box, min_dist);
  }
}

void BruteForceIndex::QueryReachable(const BBox& query, double velocity,
                                     double max_deadline,
                                     const RadiusVisitor& visit) const {
  // Negative velocity degrades to 0 (only touching entries qualify), and
  // the 0 * infinite-deadline product is NaN, which fails the skip test
  // below — exactly the conservative no-prune behavior we want.
  velocity = std::max(velocity, 0.0);
  const double radius = std::max(0.0, velocity * max_deadline);
  for (const IndexEntry& e : entries_) {
    const double min_dist = query.MinDistance(e.box);
    if (min_dist > radius) continue;
    if (min_dist > velocity * e.deadline) continue;  // expires too soon
    visit(e.id, e.box, min_dist);
  }
}

void BruteForceIndex::QueryRect(const BBox& rect,
                                const RectVisitor& visit) const {
  for (const IndexEntry& e : entries_) {
    if (rect.Intersects(e.box)) visit(e.id, e.box);
  }
}

}  // namespace mqa
