#ifndef MQA_INDEX_RTREE_INDEX_H_
#define MQA_INDEX_RTREE_INDEX_H_

#include <cstdint>
#include <vector>

#include "exec/pair_arena.h"
#include "index/spatial_index.h"

namespace mqa {

/// R*-tree SpatialIndex for skewed (Zipf / Gaussian-cluster) entity
/// distributions, where the uniform grid's fixed global resolution goes
/// unbalanced: dense regions overflow their cells while queries in sparse
/// regions walk mostly-empty buckets. The tree's node boxes adapt to the
/// data instead — leaves in a dense cluster cover tiny areas, sparse
/// space is pruned near the root — so per-query work tracks the entries
/// *near the query*, whatever the distribution.
///
/// Structure: every node holds between `min_entries` and `max_entries`
/// children (the root may hold fewer); leaf slots are (id, box, deadline)
/// entries, internal slots are child subtrees. Each node carries the
/// union bounding box of its subtree and — mirroring GridIndex's
/// per-cell maxima — the max deadline over its subtree, which lets
/// QueryReachable discard a whole subtree when
/// `velocity * subtree_max_deadline < MinDistance(query, subtree_box)`.
/// Both are upper bounds: Erase tightens boxes along the condense path
/// but may leave deadline maxima stale (still sound, just less sharp);
/// BulkLoad recomputes them exactly.
///
/// Algorithms (Beckmann et al. 1990):
///  * Insert descends by least overlap enlargement at the leaf level and
///    least area enlargement above, splits overflowing nodes along the
///    minimum-margin axis at the minimum-overlap distribution, and runs
///    forced reinsertion (the 30% of entries farthest from the node
///    center) once per insert, at the leaf level only, before resorting
///    to a split — internal overflows split directly.
///  * BulkLoad packs leaves with Sort-Tile-Recursive (sort by x-center
///    into vertical slices, each slice by y-center) and recurses on the
///    node level — O(n log n), well-balanced even on heavily clustered
///    inputs, and deterministic (ties broken by entry order).
///  * Erase locates the entry by exact (id, box) match, removes it, and
///    condenses: underfull nodes along the path are dissolved and their
///    remaining leaf entries reinserted.
///
/// Nodes live in PairArena slabs (one fixed-size block per node, freed
/// nodes recycled through a free list; BulkLoad resets the arena and
/// repacks into the retained slabs) so *node storage* allocates nothing
/// once the arena is warm under the epoch-steady-state pattern of the
/// simulator's index caches — rebuild or churn a same-sized tree every
/// epoch. Transient sort scratch (STR index permutations, split
/// distributions, condense orphans) still comes from the heap; it is
/// O(node fan-out) on the churn paths and only O(n) during BulkLoad.
///
/// Queries visit exactly the entry set the SpatialIndex contract
/// specifies (identical to BruteForceIndex/GridIndex, property-tested);
/// visit order is tree order, so callers needing cross-backend
/// determinism sort ids (which `candidate_scan.h` does).
///
/// Concurrency: queries are const and touch no mutable state — safe from
/// any number of threads concurrently, provided no mutation is in flight
/// (see src/index/README.md).
class RTreeIndex final : public SpatialIndex {
 public:
  /// `max_entries` is the node fan-out M (clamped to [4, 128]);
  /// `min_entries` defaults to 40% of M, the R* recommendation.
  explicit RTreeIndex(int max_entries = 16);
  ~RTreeIndex() override;

  void BulkLoad(const std::vector<IndexEntry>& entries) override;
  using SpatialIndex::Insert;
  void Insert(const IndexEntry& entry) override;
  bool Erase(int64_t id, const BBox& box) override;

  void QueryRadius(const BBox& query, double radius,
                   const RadiusVisitor& visit) const override;
  void QueryReachable(const BBox& query, double velocity, double max_deadline,
                      const RadiusVisitor& visit) const override;
  void QueryRect(const BBox& rect, const RectVisitor& visit) const override;

  size_t size() const override { return size_; }
  const char* name() const override { return "RTREE"; }

  int max_entries() const { return max_entries_; }
  int min_entries() const { return min_entries_; }
  /// Root height: 0 for an empty-or-leaf-only tree.
  int height() const;

 private:
  /// One leaf slot. Mirrors IndexEntry; kept separate so the node layout
  /// stays trivially copyable for slab storage.
  struct LeafEntry {
    int64_t id;
    BBox box;
    double deadline;
  };

  /// Fixed-size node block allocated from the arena: this header is
  /// followed by `max_entries_ + 1` slots (LeafEntry for level 0, Node*
  /// above — one spare slot holds the overflowing entry while a split or
  /// reinsertion decides where it goes).
  struct Node {
    BBox box;             // union of the subtree's entry boxes
    double max_deadline;  // upper bound over the subtree's deadlines
    Node* parent;
    int32_t count;
    int32_t level;  // 0 = leaf
  };

  /// Slot storage begins at the first 8-byte boundary past the header.
  static constexpr size_t kNodeHeaderBytes = (sizeof(Node) + 7) & ~size_t{7};

  static LeafEntry* Entries(Node* n);
  static const LeafEntry* Entries(const Node* n);
  static Node** Children(Node* n);
  static Node* const* Children(const Node* n);

  Node* AllocNode(int32_t level);
  void FreeNode(Node* n);
  Node* NewRootLeaf();
  size_t NodeBytes() const;

  /// Recomputes `n`'s box and deadline max exactly from its slots (and
  /// re-parents children for internal nodes).
  void RecomputeNode(Node* n);
  /// Grows `n` and its ancestors to cover `box` / `deadline`.
  void GrowUpward(Node* n, const BBox& box, double deadline);

  /// R* descent: least overlap enlargement into leaves, least area
  /// enlargement above; ties by smaller area, then child order.
  Node* ChooseLeaf(const BBox& box) const;
  /// Appends one leaf entry, growing or splitting as needed.
  /// `reinserted` carries the once-per-insert forced-reinsertion flag.
  void InsertLeafEntry(const LeafEntry& entry, uint32_t* reinserted);
  /// Resolves overflow at `n` and any overflow it propagates upward.
  void HandleOverflow(Node* n, uint32_t* reinserted);
  /// Removes the 30% of `n`'s entries farthest from its center and
  /// reinserts them from the root (closest first).
  void ForcedReinsert(Node* n, uint32_t* reinserted);
  /// R* topological split of an overflowing node; attaches the new
  /// sibling to the parent (creating a new root when `n` is the root).
  void SplitNode(Node* n);
  /// Post-Erase cleanup: dissolves underfull ancestors, reinserts their
  /// surviving leaf entries, tightens boxes, collapses a unary root.
  void CondenseTree(Node* leaf);

  bool FindEntry(Node* n, int64_t id, const BBox& box, Node** leaf,
                 int32_t* slot) const;
  void CollectAndFree(Node* n, std::vector<LeafEntry>* out);

  void RadiusRec(const Node* n, const BBox& query, double radius,
                 const RadiusVisitor& visit) const;
  void ReachableRec(const Node* n, const BBox& query, double velocity,
                    double radius, const RadiusVisitor& visit) const;
  void RectRec(const Node* n, const BBox& rect,
               const RectVisitor& visit) const;

  /// Sort-Tile-Recursive packing of one tree level into the next.
  std::vector<Node*> PackLevel(const std::vector<Node*>& children);

  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
  Node* root_ = nullptr;
  PairArena arena_;
  std::vector<Node*> free_nodes_;
};

}  // namespace mqa

#endif  // MQA_INDEX_RTREE_INDEX_H_
