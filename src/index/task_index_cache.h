#ifndef MQA_INDEX_TASK_INDEX_CACHE_H_
#define MQA_INDEX_TASK_INDEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "index/spatial_index.h"
#include "model/task.h"

namespace mqa {

/// Maintains a task spatial index *across* the simulator's time instances
/// so BuildPairPool does not re-bucket every task every instance.
///
/// Tasks carried over between instances keep their grid buckets: on each
/// BeginInstance the incoming task vector is matched against the live
/// entries by (TaskId, location box); only arrivals are inserted and only
/// departures (assigned/expired tasks, last instance's predicted tasks)
/// are erased. Since a steady-state instance replaces a small fraction of
/// the task pool, the per-instance index maintenance cost is proportional
/// to the churn, not the pool.
///
/// Entries are stored under stable internal slots; view() exposes a
/// read-only SpatialIndex whose ids are positions in the task vector most
/// recently passed to BeginInstance — exactly the id convention
/// ProblemInstance::task_index expects.
///
/// Deadlines: entries are inserted with the task's deadline at first
/// sight. A carried-over task's remaining deadline shrinks each instance
/// while its cached entry keeps the original value — a stale *upper
/// bound*, which QueryReachable pruning tolerates by design (stale maxima
/// only weaken pruning; the exact CanReach filter downstream stays
/// authoritative).
///
/// Concurrency: BeginInstance mutates the cache and must be exclusive;
/// between BeginInstance calls, view() queries are const pass-throughs
/// and safe from any number of threads concurrently (the parallel pair
/// builder queries one view from every pool thread).
class TaskIndexCache {
 public:
  /// kAuto resolves to the grid backend (the cache only pays off at the
  /// scales where the grid wins).
  explicit TaskIndexCache(IndexBackend backend = IndexBackend::kAuto);
  ~TaskIndexCache();

  /// Syncs the cache to `tasks` (the full instance task vector, current
  /// plus predicted). Invalidates the previous view().
  void BeginInstance(const std::vector<Task>& tasks);

  /// Index over the tasks of the last BeginInstance call; entry ids are
  /// indices into that vector. Valid until the next BeginInstance.
  const SpatialIndex* view() const;

  /// Entries currently bucketed in the underlying index.
  size_t size() const { return index_->size(); }

 private:
  class View;

  int32_t AllocateSlot(const BBox& box);

  std::unique_ptr<SpatialIndex> index_;  // entry ids are internal slots
  std::vector<BBox> slot_boxes_;
  std::vector<int32_t> free_slots_;
  // Live (TaskId -> slot) entries of the previous instance; multimap so a
  // malformed stream with duplicate ids degrades to churn, not corruption.
  std::unordered_multimap<TaskId, int32_t> live_;
  std::vector<int32_t> slot_to_index_;
  std::unique_ptr<View> view_;
};

}  // namespace mqa

#endif  // MQA_INDEX_TASK_INDEX_CACHE_H_
