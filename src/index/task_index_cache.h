#ifndef MQA_INDEX_TASK_INDEX_CACHE_H_
#define MQA_INDEX_TASK_INDEX_CACHE_H_

#include "index/entity_index_cache.h"
#include "model/task.h"

namespace mqa {

/// Trait instantiation behind TaskIndexCache: tasks are bucketed by their
/// location box and carry their deadline as the QueryReachable pruning
/// bound, so worker-centric reachability scans can skip entries (and, in
/// GridIndex, whole cells) a worker cannot reach in time.
///
/// Deadlines: entries keep the deadline they were inserted with even as a
/// carried-over task's remaining deadline shrinks each epoch — a stale
/// *upper bound*, which QueryReachable pruning tolerates by design (stale
/// maxima only weaken pruning; the exact CanReach filter downstream stays
/// authoritative).
struct TaskIndexTraits {
  static int64_t id(const Task& t) { return t.id; }
  static const BBox& box(const Task& t) { return t.location; }
  static double bound(const Task& t) { return t.deadline; }
};

/// Maintains a task spatial index *across* the simulator's epochs so
/// BuildPairPool does not re-bucket every task every epoch. Entry ids of
/// view() are positions in the task vector most recently passed to
/// BeginInstance — exactly the id convention ProblemInstance::task_index
/// expects. See EntityIndexCache for the carryover and concurrency
/// contract.
using TaskIndexCache = EntityIndexCache<Task, TaskIndexTraits>;

}  // namespace mqa

#endif  // MQA_INDEX_TASK_INDEX_CACHE_H_
