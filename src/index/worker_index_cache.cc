#include "index/worker_index_cache.h"

namespace mqa {

double MaxWorkerVelocity(const std::vector<Worker>& workers) {
  double max_v = 0.0;
  for (const Worker& w : workers) {
    if (w.velocity > max_v) max_v = w.velocity;
  }
  return max_v;
}

}  // namespace mqa
