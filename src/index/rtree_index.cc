#include "index/rtree_index.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "common/logging.h"

namespace mqa {

namespace {

double Area(const BBox& b) { return b.WidthX() * b.WidthY(); }
double Margin(const BBox& b) { return b.WidthX() + b.WidthY(); }

double OverlapArea(const BBox& a, const BBox& b) {
  const double w = std::min(a.hi().x, b.hi().x) - std::max(a.lo().x, b.lo().x);
  const double h = std::min(a.hi().y, b.hi().y) - std::max(a.lo().y, b.lo().y);
  return w > 0.0 && h > 0.0 ? w * h : 0.0;
}

bool Covers(const BBox& outer, const BBox& inner) {
  return outer.lo().x <= inner.lo().x && outer.lo().y <= inner.lo().y &&
         outer.hi().x >= inner.hi().x && outer.hi().y >= inner.hi().y;
}

double CenterDist2(const BBox& a, const BBox& b) {
  const Point ca = a.Center();
  const Point cb = b.Center();
  const double dx = ca.x - cb.x;
  const double dy = ca.y - cb.y;
  return dx * dx + dy * dy;
}

/// R* split of `count` boxes into [0, k) and [k, count): picks the axis
/// with the least margin sum over all legal distributions of both
/// per-axis sorts, then the distribution with the least group overlap
/// (ties: least total area). `order` receives the winning permutation.
/// Every sort is stable, so equal boxes split deterministically.
int ChooseSplit(const std::vector<BBox>& boxes, int min_fill,
                std::vector<int32_t>* order) {
  const int count = static_cast<int>(boxes.size());
  std::vector<int32_t> sorted[4];  // {x,y} x {lo-major, hi-major}
  for (int s = 0; s < 4; ++s) {
    sorted[s].resize(count);
    std::iota(sorted[s].begin(), sorted[s].end(), 0);
    const bool x_axis = s < 2;
    const bool hi_major = (s & 1) != 0;
    std::stable_sort(
        sorted[s].begin(), sorted[s].end(), [&](int32_t a, int32_t b) {
          const double a_lo = x_axis ? boxes[a].lo().x : boxes[a].lo().y;
          const double b_lo = x_axis ? boxes[b].lo().x : boxes[b].lo().y;
          const double a_hi = x_axis ? boxes[a].hi().x : boxes[a].hi().y;
          const double b_hi = x_axis ? boxes[b].hi().x : boxes[b].hi().y;
          return hi_major ? (a_hi != b_hi ? a_hi < b_hi : a_lo < b_lo)
                          : (a_lo != b_lo ? a_lo < b_lo : a_hi < b_hi);
        });
  }

  // Prefix/suffix unions per sort make every distribution O(1).
  std::vector<BBox> prefix(count), suffix(count);
  double axis_margin[2] = {0.0, 0.0};
  struct Candidate {
    int sort = -1;
    int k = 0;
    double overlap = 0.0;
    double area = 0.0;
  };
  Candidate best_per_axis[2];
  for (int s = 0; s < 4; ++s) {
    const std::vector<int32_t>& idx = sorted[s];
    prefix[0] = boxes[idx[0]];
    for (int i = 1; i < count; ++i) prefix[i] = Union(prefix[i - 1], boxes[idx[i]]);
    suffix[count - 1] = boxes[idx[count - 1]];
    for (int i = count - 2; i >= 0; --i) suffix[i] = Union(suffix[i + 1], boxes[idx[i]]);

    const int axis = s < 2 ? 0 : 1;
    for (int k = min_fill; k <= count - min_fill; ++k) {
      const BBox& g1 = prefix[k - 1];
      const BBox& g2 = suffix[k];
      axis_margin[axis] += Margin(g1) + Margin(g2);
      const double overlap = OverlapArea(g1, g2);
      const double area = Area(g1) + Area(g2);
      Candidate& best = best_per_axis[axis];
      if (best.sort < 0 || overlap < best.overlap ||
          (overlap == best.overlap && area < best.area)) {
        best = {s, k, overlap, area};
      }
    }
  }

  const int axis = axis_margin[0] <= axis_margin[1] ? 0 : 1;
  const Candidate& win = best_per_axis[axis];
  *order = sorted[win.sort];
  return win.k;
}

/// Sort-Tile-Recursive grouping: orders item indices by x-center into
/// vertical slices, each slice by y-center, and emits consecutive groups
/// of at most `group` items. Stable sorts keep ties in input order, so
/// the packing is deterministic even when every box is identical.
template <typename GetBox, typename Emit>
void TilePack(size_t n, int group, GetBox box_of, Emit emit) {
  std::vector<int32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  const size_t num_groups = (n + static_cast<size_t>(group) - 1) /
                            static_cast<size_t>(group);
  const size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const size_t slice_items =
      ((num_groups + slices - 1) / slices) * static_cast<size_t>(group);

  std::stable_sort(idx.begin(), idx.end(), [&](int32_t a, int32_t b) {
    return box_of(a).Center().x < box_of(b).Center().x;
  });
  for (size_t s = 0; s < n; s += slice_items) {
    const size_t e = std::min(n, s + slice_items);
    std::stable_sort(idx.begin() + static_cast<ptrdiff_t>(s),
                     idx.begin() + static_cast<ptrdiff_t>(e),
                     [&](int32_t a, int32_t b) {
                       return box_of(a).Center().y < box_of(b).Center().y;
                     });
    for (size_t g = s; g < e; g += static_cast<size_t>(group)) {
      emit(idx.data() + g,
           static_cast<int>(std::min(e - g, static_cast<size_t>(group))));
    }
  }
}

}  // namespace

// --- node memory -----------------------------------------------------------

RTreeIndex::LeafEntry* RTreeIndex::Entries(Node* n) {
  return reinterpret_cast<LeafEntry*>(reinterpret_cast<unsigned char*>(n) +
                                      kNodeHeaderBytes);
}

const RTreeIndex::LeafEntry* RTreeIndex::Entries(const Node* n) {
  return reinterpret_cast<const LeafEntry*>(
      reinterpret_cast<const unsigned char*>(n) + kNodeHeaderBytes);
}

RTreeIndex::Node** RTreeIndex::Children(Node* n) {
  return reinterpret_cast<Node**>(reinterpret_cast<unsigned char*>(n) +
                                  kNodeHeaderBytes);
}

RTreeIndex::Node* const* RTreeIndex::Children(const Node* n) {
  return reinterpret_cast<Node* const*>(
      reinterpret_cast<const unsigned char*>(n) + kNodeHeaderBytes);
}

size_t RTreeIndex::NodeBytes() const {
  // One spare slot (max_entries_ + 1) holds the overflowing entry while a
  // split or reinsertion decides where it goes. Leaf slots are the wider
  // of the two payloads, so one block size fits both node kinds.
  static_assert(sizeof(LeafEntry) >= sizeof(Node*), "slot sizing");
  return kNodeHeaderBytes +
         static_cast<size_t>(max_entries_ + 1) * sizeof(LeafEntry);
}

RTreeIndex::RTreeIndex(int max_entries)
    : max_entries_(std::clamp(max_entries, 4, 128)),
      min_entries_(std::max(2, (max_entries_ * 2) / 5)) {}

RTreeIndex::~RTreeIndex() = default;

RTreeIndex::Node* RTreeIndex::AllocNode(int32_t level) {
  Node* n;
  if (!free_nodes_.empty()) {
    n = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    n = new (arena_.Allocate(NodeBytes(), alignof(LeafEntry))) Node();
  }
  n->box = BBox();
  n->max_deadline = 0.0;
  n->parent = nullptr;
  n->count = 0;
  n->level = level;
  return n;
}

void RTreeIndex::FreeNode(Node* n) { free_nodes_.push_back(n); }

RTreeIndex::Node* RTreeIndex::NewRootLeaf() {
  Node* n = AllocNode(0);
  return n;
}

int RTreeIndex::height() const { return root_ == nullptr ? 0 : root_->level; }

// --- box / deadline maintenance --------------------------------------------

void RTreeIndex::RecomputeNode(Node* n) {
  if (n->count == 0) {
    n->box = BBox();
    n->max_deadline = 0.0;
    return;
  }
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    BBox box = es[0].box;
    double dl = es[0].deadline;
    for (int32_t i = 1; i < n->count; ++i) {
      box = Union(box, es[i].box);
      dl = std::max(dl, es[i].deadline);
    }
    n->box = box;
    n->max_deadline = dl;
  } else {
    Node** cs = Children(n);
    BBox box = cs[0]->box;
    double dl = cs[0]->max_deadline;
    cs[0]->parent = n;
    for (int32_t i = 1; i < n->count; ++i) {
      box = Union(box, cs[i]->box);
      dl = std::max(dl, cs[i]->max_deadline);
      cs[i]->parent = n;
    }
    n->box = box;
    n->max_deadline = dl;
  }
}

void RTreeIndex::GrowUpward(Node* n, const BBox& box, double deadline) {
  for (; n != nullptr; n = n->parent) {
    n->box = Union(n->box, box);
    n->max_deadline = std::max(n->max_deadline, deadline);
  }
}

// --- insertion --------------------------------------------------------------

RTreeIndex::Node* RTreeIndex::ChooseLeaf(const BBox& box) const {
  Node* n = root_;
  while (n->level > 0) {
    Node* const* cs = Children(n);
    int32_t best = 0;
    if (n->level == 1) {
      // Children are leaves: minimize overlap enlargement, then area
      // enlargement, then area (R* CS2).
      double best_overlap = 0.0, best_enlarge = 0.0, best_area = 0.0;
      for (int32_t i = 0; i < n->count; ++i) {
        const BBox& cb = cs[i]->box;
        const BBox grown = Union(cb, box);
        double overlap_delta = 0.0;
        for (int32_t j = 0; j < n->count; ++j) {
          if (j == i) continue;
          overlap_delta +=
              OverlapArea(grown, cs[j]->box) - OverlapArea(cb, cs[j]->box);
        }
        const double area = Area(cb);
        const double enlarge = Area(grown) - area;
        if (i == 0 || overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best = i;
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    } else {
      // Children are internal: minimize area enlargement, then area.
      double best_enlarge = 0.0, best_area = 0.0;
      for (int32_t i = 0; i < n->count; ++i) {
        const double area = Area(cs[i]->box);
        const double enlarge = Area(Union(cs[i]->box, box)) - area;
        if (i == 0 || enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = i;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    }
    n = cs[best];
  }
  return n;
}

void RTreeIndex::InsertLeafEntry(const LeafEntry& entry, uint32_t* reinserted) {
  Node* leaf = ChooseLeaf(entry.box);
  Entries(leaf)[leaf->count++] = entry;
  if (leaf->count == 1) {
    leaf->box = entry.box;
    leaf->max_deadline = entry.deadline;
  } else {
    leaf->box = Union(leaf->box, entry.box);
    leaf->max_deadline = std::max(leaf->max_deadline, entry.deadline);
  }
  GrowUpward(leaf->parent, entry.box, entry.deadline);
  if (leaf->count > max_entries_) HandleOverflow(leaf, reinserted);
}

void RTreeIndex::Insert(const IndexEntry& entry) {
  if (root_ == nullptr) root_ = NewRootLeaf();
  uint32_t reinserted = 0;
  InsertLeafEntry({entry.id, entry.box, entry.deadline}, &reinserted);
  ++size_;
}

void RTreeIndex::HandleOverflow(Node* n, uint32_t* reinserted) {
  while (n != nullptr && n->count > max_entries_) {
    // Forced reinsertion runs at most once per insert and only at the
    // leaf level (internal overflows split directly — leaves dominate
    // both node count and clustering damage, and leaf-only reinsertion
    // keeps orphan subtrees out of the insert path).
    if (n->level == 0 && n != root_ && (*reinserted & 1u) == 0) {
      *reinserted |= 1u;
      ForcedReinsert(n, reinserted);
      return;
    }
    SplitNode(n);
    n = n->parent;
  }
}

void RTreeIndex::ForcedReinsert(Node* n, uint32_t* reinserted) {
  const int32_t count = n->count;
  const int32_t p = std::max<int32_t>(1, (count * 3) / 10);
  const BBox node_box = n->box;
  std::vector<int32_t> idx(static_cast<size_t>(count));
  std::iota(idx.begin(), idx.end(), 0);
  LeafEntry* es = Entries(n);
  std::stable_sort(idx.begin(), idx.end(), [&](int32_t a, int32_t b) {
    return CenterDist2(es[a].box, node_box) > CenterDist2(es[b].box, node_box);
  });

  std::vector<LeafEntry> removed;
  removed.reserve(static_cast<size_t>(p));
  for (int32_t i = 0; i < p; ++i) removed.push_back(es[idx[static_cast<size_t>(i)]]);

  // Keep the survivors in their original slot order (stable compaction).
  std::vector<char> drop(static_cast<size_t>(count), 0);
  for (int32_t i = 0; i < p; ++i) drop[static_cast<size_t>(idx[static_cast<size_t>(i)])] = 1;
  int32_t w = 0;
  for (int32_t i = 0; i < count; ++i) {
    if (!drop[static_cast<size_t>(i)]) es[w++] = es[i];
  }
  n->count = w;
  RecomputeNode(n);
  // Ancestor boxes/maxima are left loose: still covering (sound), and the
  // reinserts below re-grow whatever they need.

  // Reinsert closest-first (the R* "close reinsert" variant).
  for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
    InsertLeafEntry(*it, reinserted);
  }
}

void RTreeIndex::SplitNode(Node* n) {
  const int32_t count = n->count;
  std::vector<BBox> boxes(static_cast<size_t>(count));
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    for (int32_t i = 0; i < count; ++i) boxes[static_cast<size_t>(i)] = es[i].box;
  } else {
    Node* const* cs = Children(n);
    for (int32_t i = 0; i < count; ++i) boxes[static_cast<size_t>(i)] = cs[i]->box;
  }
  std::vector<int32_t> order;
  const int k = ChooseSplit(boxes, min_entries_, &order);

  Node* nn = AllocNode(n->level);
  if (n->level == 0) {
    LeafEntry* es = Entries(n);
    std::vector<LeafEntry> slots(es, es + count);
    for (int i = 0; i < k; ++i) es[i] = slots[static_cast<size_t>(order[static_cast<size_t>(i)])];
    LeafEntry* ns = Entries(nn);
    for (int i = k; i < count; ++i) {
      ns[i - k] = slots[static_cast<size_t>(order[static_cast<size_t>(i)])];
    }
  } else {
    Node** cs = Children(n);
    std::vector<Node*> slots(cs, cs + count);
    for (int i = 0; i < k; ++i) cs[i] = slots[static_cast<size_t>(order[static_cast<size_t>(i)])];
    Node** ns = Children(nn);
    for (int i = k; i < count; ++i) {
      ns[i - k] = slots[static_cast<size_t>(order[static_cast<size_t>(i)])];
    }
  }
  n->count = k;
  nn->count = count - k;
  RecomputeNode(n);
  RecomputeNode(nn);

  if (n == root_) {
    Node* r = AllocNode(n->level + 1);
    Children(r)[0] = n;
    Children(r)[1] = nn;
    r->count = 2;
    RecomputeNode(r);
    root_ = r;
  } else {
    Node* parent = n->parent;
    Children(parent)[parent->count++] = nn;
    nn->parent = parent;
    RecomputeNode(parent);
  }
}

// --- bulk load ---------------------------------------------------------------

std::vector<RTreeIndex::Node*> RTreeIndex::PackLevel(
    const std::vector<Node*>& children) {
  std::vector<Node*> parents;
  parents.reserve(children.size() / static_cast<size_t>(min_entries_) + 1);
  TilePack(
      children.size(), max_entries_,
      [&](int32_t i) -> const BBox& { return children[static_cast<size_t>(i)]->box; },
      [&](const int32_t* group, int group_count) {
        Node* parent = AllocNode(children[static_cast<size_t>(group[0])]->level + 1);
        Node** cs = Children(parent);
        for (int i = 0; i < group_count; ++i) {
          cs[i] = children[static_cast<size_t>(group[i])];
        }
        parent->count = group_count;
        RecomputeNode(parent);
        parents.push_back(parent);
      });
  return parents;
}

void RTreeIndex::BulkLoad(const std::vector<IndexEntry>& entries) {
  arena_.Reset();
  free_nodes_.clear();
  root_ = nullptr;
  size_ = entries.size();
  if (entries.empty()) {
    root_ = NewRootLeaf();
    return;
  }

  std::vector<Node*> level;
  level.reserve(entries.size() / static_cast<size_t>(min_entries_) + 1);
  TilePack(
      entries.size(), max_entries_,
      [&](int32_t i) -> const BBox& { return entries[static_cast<size_t>(i)].box; },
      [&](const int32_t* group, int group_count) {
        Node* leaf = AllocNode(0);
        LeafEntry* es = Entries(leaf);
        for (int i = 0; i < group_count; ++i) {
          const IndexEntry& e = entries[static_cast<size_t>(group[i])];
          es[i] = {e.id, e.box, e.deadline};
        }
        leaf->count = group_count;
        RecomputeNode(leaf);
        level.push_back(leaf);
      });
  while (level.size() > 1) level = PackLevel(level);
  root_ = level[0];
  root_->parent = nullptr;
}

// --- erase -------------------------------------------------------------------

bool RTreeIndex::FindEntry(Node* n, int64_t id, const BBox& box, Node** leaf,
                           int32_t* slot) const {
  if (n->count == 0 || !Covers(n->box, box)) return false;
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    for (int32_t i = 0; i < n->count; ++i) {
      if (es[i].id == id && es[i].box == box) {
        *leaf = n;
        *slot = i;
        return true;
      }
    }
    return false;
  }
  Node* const* cs = Children(n);
  for (int32_t i = 0; i < n->count; ++i) {
    if (FindEntry(cs[i], id, box, leaf, slot)) return true;
  }
  return false;
}

void RTreeIndex::CollectAndFree(Node* n, std::vector<LeafEntry>* out) {
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    out->insert(out->end(), es, es + n->count);
  } else {
    Node** cs = Children(n);
    for (int32_t i = 0; i < n->count; ++i) CollectAndFree(cs[i], out);
  }
  FreeNode(n);
}

void RTreeIndex::CondenseTree(Node* leaf) {
  std::vector<LeafEntry> orphans;
  Node* n = leaf;
  while (n != root_) {
    Node* parent = n->parent;
    if (n->count < min_entries_) {
      // Dissolve the underfull node: unlink from the parent, gather the
      // subtree's surviving leaf entries for reinsertion.
      Node** cs = Children(parent);
      for (int32_t i = 0; i < parent->count; ++i) {
        if (cs[i] == n) {
          cs[i] = cs[parent->count - 1];
          --parent->count;
          break;
        }
      }
      CollectAndFree(n, &orphans);
    } else {
      RecomputeNode(n);
    }
    n = parent;
  }

  while (root_->level > 0 && root_->count == 1) {
    Node* child = Children(root_)[0];
    child->parent = nullptr;
    FreeNode(root_);
    root_ = child;
  }
  if (root_->level > 0 && root_->count == 0) {
    FreeNode(root_);
    root_ = NewRootLeaf();
  }
  RecomputeNode(root_);

  for (const LeafEntry& e : orphans) {
    uint32_t reinserted = 0;
    InsertLeafEntry(e, &reinserted);
  }
}

bool RTreeIndex::Erase(int64_t id, const BBox& box) {
  if (root_ == nullptr || root_->count == 0) return false;
  Node* leaf = nullptr;
  int32_t slot = -1;
  if (!FindEntry(root_, id, box, &leaf, &slot)) return false;
  LeafEntry* es = Entries(leaf);
  es[slot] = es[leaf->count - 1];
  --leaf->count;
  --size_;
  CondenseTree(leaf);
  return true;
}

// --- queries -----------------------------------------------------------------

void RTreeIndex::RadiusRec(const Node* n, const BBox& query, double radius,
                           const RadiusVisitor& visit) const {
  if (n->count == 0 || query.MinDistance(n->box) > radius) return;
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    for (int32_t i = 0; i < n->count; ++i) {
      const double min_dist = query.MinDistance(es[i].box);
      if (min_dist <= radius) visit(es[i].id, es[i].box, min_dist);
    }
    return;
  }
  Node* const* cs = Children(n);
  for (int32_t i = 0; i < n->count; ++i) RadiusRec(cs[i], query, radius, visit);
}

void RTreeIndex::QueryRadius(const BBox& query, double radius,
                             const RadiusVisitor& visit) const {
  MQA_CHECK(radius >= 0.0) << "negative query radius " << radius;
  if (root_ != nullptr) RadiusRec(root_, query, radius, visit);
}

void RTreeIndex::ReachableRec(const Node* n, const BBox& query,
                              double velocity, double radius,
                              const RadiusVisitor& visit) const {
  if (n->count == 0) return;
  const double min_dist_node = query.MinDistance(n->box);
  if (min_dist_node > radius) return;
  // Subtree pruning: every entry below n satisfies
  //   min_dist(query, e.box) >= min_dist(query, n->box) and
  //   e.deadline <= n->max_deadline,
  // so `velocity * n->max_deadline < min_dist(query, n->box)` proves the
  // whole subtree unreachable — the GridIndex per-cell rule carried up
  // every internal level. NaN products (velocity 0 with an infinite
  // deadline) fail the strict comparison and conservatively descend.
  if (velocity * n->max_deadline < min_dist_node) return;
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    for (int32_t i = 0; i < n->count; ++i) {
      const double min_dist = query.MinDistance(es[i].box);
      if (min_dist > radius) continue;
      if (min_dist > velocity * es[i].deadline) continue;  // expires too soon
      visit(es[i].id, es[i].box, min_dist);
    }
    return;
  }
  Node* const* cs = Children(n);
  for (int32_t i = 0; i < n->count; ++i) {
    ReachableRec(cs[i], query, velocity, radius, visit);
  }
}

void RTreeIndex::QueryReachable(const BBox& query, double velocity,
                                double max_deadline,
                                const RadiusVisitor& visit) const {
  velocity = std::max(velocity, 0.0);
  const double radius = std::max(0.0, velocity * max_deadline);
  if (root_ != nullptr) ReachableRec(root_, query, velocity, radius, visit);
}

void RTreeIndex::RectRec(const Node* n, const BBox& rect,
                         const RectVisitor& visit) const {
  if (n->count == 0 || !rect.Intersects(n->box)) return;
  if (n->level == 0) {
    const LeafEntry* es = Entries(n);
    for (int32_t i = 0; i < n->count; ++i) {
      if (rect.Intersects(es[i].box)) visit(es[i].id, es[i].box);
    }
    return;
  }
  Node* const* cs = Children(n);
  for (int32_t i = 0; i < n->count; ++i) RectRec(cs[i], rect, visit);
}

void RTreeIndex::QueryRect(const BBox& rect, const RectVisitor& visit) const {
  if (root_ != nullptr) RectRec(root_, rect, visit);
}

}  // namespace mqa
