#ifndef MQA_INDEX_GRID_INDEX_H_
#define MQA_INDEX_GRID_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/spatial_index.h"

namespace mqa {

/// Uniform-grid SpatialIndex over the unit data space: [0,1]^2 is cut
/// into side x side square cells and every entry is bucketed into each
/// cell its box overlaps. A radius query visits only the cells within the
/// query box expanded by the radius, so with n roughly uniform entries
/// and side ~ sqrt(n) the per-query cost is proportional to the number of
/// entries near the query instead of n.
///
/// Entries spanning several cells are reported exactly once per query via
/// the home-cell rule (an entry is emitted only from the first cell, in
/// scan order, of the intersection of its cell range and the query's), so
/// queries need no per-call dedup set.
///
/// Each cell additionally tracks the max deadline and the union bounding
/// box of its entries, so QueryReachable can discard a whole cell when
/// `velocity * cell_max_deadline < MinDistance(query, cell_bounds)` —
/// every entry bucketed there would expire before the worker arrives.
/// Both maxima are upper bounds: Erase leaves them stale (still valid,
/// just less sharp) and BulkLoad/Rebuild recompute them exactly.
///
/// Coordinates outside [0,1] are legal: they bucket into the boundary
/// cells, and exact distance/intersection tests keep query results
/// correct regardless of clamping.
///
/// Concurrency: queries are const and touch no mutable state — safe from
/// any number of threads concurrently, provided no mutation is in flight
/// (see src/index/README.md).
class GridIndex final : public SpatialIndex {
 public:
  /// `cells_per_side` fixes the resolution; 0 (auto) picks ~sqrt(n) at
  /// BulkLoad time and rebalances after incremental growth (see Insert).
  explicit GridIndex(int cells_per_side = 0);

  void BulkLoad(const std::vector<IndexEntry>& entries) override;

  /// Inserts one entry. With auto resolution, growing (Insert) or
  /// shrinking (Erase) the entry count 4x past the last (re)build
  /// triggers an O(n) rebucketing so buckets stay near-constant size
  /// under incremental churn.
  using SpatialIndex::Insert;
  void Insert(const IndexEntry& entry) override;
  bool Erase(int64_t id, const BBox& box) override;

  void QueryRadius(const BBox& query, double radius,
                   const RadiusVisitor& visit) const override;
  void QueryReachable(const BBox& query, double velocity, double max_deadline,
                      const RadiusVisitor& visit) const override;
  void QueryRect(const BBox& rect, const RectVisitor& visit) const override;

  size_t size() const override { return size_; }
  const char* name() const override { return "GRID"; }

  int cells_per_side() const { return side_; }

 private:
  // A bucketed entry with its precomputed cell range [cx0,cx1]x[cy0,cy1];
  // the range makes the home-cell dedup rule O(1) per encounter.
  struct Entry {
    int64_t id;
    BBox box;
    double deadline;
    int32_t cx0, cx1, cy0, cy1;
  };

  // One grid cell: its entries plus the pruning maxima QueryReachable
  // uses. `max_deadline` and `bounds` cover at least the current entries
  // (exactly after BulkLoad/Rebuild; possibly stale after Erase).
  struct Cell {
    std::vector<Entry> entries;
    double max_deadline = 0.0;
    BBox bounds;  // meaningful only when !entries.empty()
  };

  int CellCoord(double v) const;
  Entry MakeEntry(const IndexEntry& entry) const;

  // Walks the cells overlapping `range`; `cell_fn(cell)` returns false to
  // skip (prune) a cell wholesale, and each surviving cell's entries are
  // handed to `fn` exactly once via the home-cell rule (an entry is
  // skipped except in the first cell, in scan order, of the intersection
  // of its cell range and the query's). A pruned cell drops exactly the
  // entries whose home cell it is, so pruning is sound only when the
  // predicate rejects every entry *bucketed* in the cell (which the
  // deadline/bounds maxima guarantee). Shared by all queries so the
  // dedup subtlety lives in one place.
  template <typename CellFn, typename Fn>
  void ForEachInRange(const BBox& range, CellFn&& cell_fn, Fn&& fn) const {
    const int32_t qx0 = CellCoord(range.lo().x);
    const int32_t qx1 = CellCoord(range.hi().x);
    const int32_t qy0 = CellCoord(range.lo().y);
    const int32_t qy1 = CellCoord(range.hi().y);
    for (int32_t cy = qy0; cy <= qy1; ++cy) {
      for (int32_t cx = qx0; cx <= qx1; ++cx) {
        const Cell& cell =
            cells_[static_cast<size_t>(cy) * static_cast<size_t>(side_) +
                   static_cast<size_t>(cx)];
        if (cell.entries.empty() || !cell_fn(cell)) continue;
        for (const Entry& e : cell.entries) {
          if (cx != std::max(e.cx0, qx0) || cy != std::max(e.cy0, qy0)) {
            continue;
          }
          fn(e);
        }
      }
    }
  }
  void InsertEntry(const Entry& e);
  // Collects every entry exactly once (via home cells).
  std::vector<IndexEntry> Snapshot() const;
  // Re-buckets everything at a resolution fit for `expected` entries.
  void Rebuild(size_t expected);

  bool auto_resolution_;
  int side_;
  double inv_cell_ = 1.0;
  size_t size_ = 0;
  // Entry count at the last (re)build; growth beyond 4x triggers Rebuild.
  size_t built_size_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace mqa

#endif  // MQA_INDEX_GRID_INDEX_H_
