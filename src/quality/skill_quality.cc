#include "quality/skill_quality.h"

#include "common/logging.h"
#include "quality/score_hash.h"

namespace mqa {

SkillQualityModel::SkillQualityModel(int num_types, double scale,
                                     uint64_t seed)
    : num_types_(num_types), scale_(scale), seed_(seed) {
  MQA_CHECK(num_types >= 1) << "need at least one task type";
  MQA_CHECK(scale > 0.0) << "scale must be positive";
}

int SkillQualityModel::TaskType(TaskId task_id) const {
  const uint64_t h = internal::MixIds(seed_ ^ 0x7a5bull, task_id, 1);
  return static_cast<int>(h % static_cast<uint64_t>(num_types_));
}

double SkillQualityModel::Expertise(WorkerId worker_id, int type) const {
  const uint64_t h = internal::MixIds(seed_, worker_id, type);
  // Beta(2,2)-like hump via average of two uniforms: most workers are
  // mid-skilled, few are experts or novices.
  const double u1 = internal::HashUniform(h);
  const double u2 = internal::HashUniform(internal::SplitMix64(h));
  return 0.5 * (u1 + u2);
}

double SkillQualityModel::Score(const Worker& worker, const Task& task) const {
  return scale_ * Expertise(worker.id, TaskType(task.id));
}

}  // namespace mqa
