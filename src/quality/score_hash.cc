#include "quality/score_hash.h"

#include <cmath>

namespace mqa {
namespace internal {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixIds(uint64_t seed, int64_t a, int64_t b) {
  uint64_t h = SplitMix64(seed);
  h = SplitMix64(h ^ static_cast<uint64_t>(a) * 0x9e3779b97f4a7c15ULL);
  h = SplitMix64(h ^ static_cast<uint64_t>(b) * 0xc2b2ae3d27d4eb4fULL);
  return h;
}

double HashUniform(uint64_t state) {
  return static_cast<double>(state >> 11) * 0x1.0p-53;
}

double HashGaussianInRange(uint64_t state, double lo, double hi) {
  if (lo >= hi) return lo;
  const double mean = 0.5 * (lo + hi);
  const double stddev = (hi - lo) / 6.0;
  // Box-Muller over hash-derived uniforms; advance the state on rejection.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double u1 = HashUniform(state = SplitMix64(state));
    const double u2 = HashUniform(state = SplitMix64(state));
    if (u1 <= 0.0) continue;
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    const double v = mean + stddev * z;
    if (v >= lo && v <= hi) return v;
  }
  return mean;
}

}  // namespace internal
}  // namespace mqa
