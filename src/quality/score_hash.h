#ifndef MQA_QUALITY_SCORE_HASH_H_
#define MQA_QUALITY_SCORE_HASH_H_

#include <cstdint>

namespace mqa {
namespace internal {

/// SplitMix64 step: a fast, well-mixed 64-bit permutation used to derive
/// deterministic per-pair randomness without storing an n*m matrix.
uint64_t SplitMix64(uint64_t x);

/// Combines a seed and two entity ids into one hash state.
uint64_t MixIds(uint64_t seed, int64_t a, int64_t b);

/// Uniform double in [0, 1) derived from a hash state (53-bit mantissa).
double HashUniform(uint64_t state);

/// Gaussian with mean (lo+hi)/2 and stddev (hi-lo)/6, truncated to
/// [lo, hi] by bounded resampling — the deterministic counterpart of
/// Rng::GaussianInRange used for per-pair quality scores.
double HashGaussianInRange(uint64_t state, double lo, double hi);

}  // namespace internal
}  // namespace mqa

#endif  // MQA_QUALITY_SCORE_HASH_H_
