#ifndef MQA_QUALITY_QUALITY_MODEL_H_
#define MQA_QUALITY_QUALITY_MODEL_H_

#include "model/task.h"
#include "model/worker.h"

namespace mqa {

/// Maps a (current worker, current task) pair to its quality score q_ij
/// (paper Section II-C). Implementations must be deterministic: the same
/// (worker.id, task.id) always yields the same score, so that repeated
/// lookups, validation, and re-runs agree without materializing an n*m
/// matrix.
///
/// Scores of pairs involving *predicted* entities are not produced here;
/// they are estimated from current-pair samples (paper Section III-B,
/// Cases 1-3) by BuildCandidatePairs.
class QualityModel {
 public:
  virtual ~QualityModel() = default;

  /// Quality score of assigning `worker` to `task`.
  virtual double Score(const Worker& worker, const Task& task) const = 0;
};

}  // namespace mqa

#endif  // MQA_QUALITY_QUALITY_MODEL_H_
