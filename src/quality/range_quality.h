#ifndef MQA_QUALITY_RANGE_QUALITY_H_
#define MQA_QUALITY_RANGE_QUALITY_H_

#include <cstdint>

#include "quality/quality_model.h"

namespace mqa {

/// The paper's synthetic quality model: q_ij is drawn from a Gaussian
/// restricted to [q_lo, q_hi] (Table IV, "the quality range [q-, q+]").
/// Scores are a pure function of (worker.id, task.id, seed) via a
/// counter-based hash generator, so no storage is needed and every lookup
/// is O(1) and reproducible.
class RangeQualityModel : public QualityModel {
 public:
  RangeQualityModel(double q_lo, double q_hi, uint64_t seed = 42);

  double Score(const Worker& worker, const Task& task) const override;

  double q_lo() const { return q_lo_; }
  double q_hi() const { return q_hi_; }

 private:
  double q_lo_;
  double q_hi_;
  uint64_t seed_;
};

}  // namespace mqa

#endif  // MQA_QUALITY_RANGE_QUALITY_H_
