#include "quality/range_quality.h"

#include <cmath>

#include "common/logging.h"
#include "quality/score_hash.h"

namespace mqa {

RangeQualityModel::RangeQualityModel(double q_lo, double q_hi, uint64_t seed)
    : q_lo_(q_lo), q_hi_(q_hi), seed_(seed) {
  MQA_CHECK(q_lo <= q_hi) << "invalid quality range";
}

double RangeQualityModel::Score(const Worker& worker, const Task& task) const {
  return internal::HashGaussianInRange(
      internal::MixIds(seed_, worker.id, task.id), q_lo_, q_hi_);
}

}  // namespace mqa
