#ifndef MQA_QUALITY_SKILL_QUALITY_H_
#define MQA_QUALITY_SKILL_QUALITY_H_

#include <cstdint>
#include <vector>

#include "quality/quality_model.h"

namespace mqa {

/// A structured quality model for realistic scenarios: every task has one
/// of `num_types` types (photo, traffic report, shelf audit, ...) and every
/// worker an expertise level per type in [0, 1]. The score of a pair is
///   q_ij = scale * expertise(worker, type(task)),
/// so, unlike RangeQualityModel, scores are *correlated per worker*: a
/// worker that is good at photography is good at all photo tasks. Types
/// and expertise are derived deterministically from ids.
///
/// Used by the fleet-dispatch example; the paper's experiments use
/// RangeQualityModel.
class SkillQualityModel : public QualityModel {
 public:
  SkillQualityModel(int num_types, double scale, uint64_t seed = 42);

  double Score(const Worker& worker, const Task& task) const override;

  /// The type assigned to `task_id` (stable across calls).
  int TaskType(TaskId task_id) const;

  /// Expertise of `worker_id` for `type`, in [0, 1].
  double Expertise(WorkerId worker_id, int type) const;

 private:
  int num_types_;
  double scale_;
  uint64_t seed_;
};

}  // namespace mqa

#endif  // MQA_QUALITY_SKILL_QUALITY_H_
