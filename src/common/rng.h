#ifndef MQA_COMMON_RNG_H_
#define MQA_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace mqa {

/// Deterministic, seedable random number generator used everywhere in the
/// library. All experiments take an explicit seed so every benchmark and
/// test run is reproducible.
///
/// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  /// Constructs a generator with the given seed.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Gaussian with mean (lo+hi)/2 and stddev derived from the range,
  /// truncated (by resampling) to [lo, hi]. This matches the paper's
  /// "Gaussian distributions within [x-, x+]" generation for velocities,
  /// qualities, etc.
  double GaussianInRange(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [1, n] with the given skew (exponent).
  /// Uses inverse-CDF sampling on the precomputed harmonic weights when n
  /// is small, otherwise rejection sampling.
  int64_t Zipf(int64_t n, double skew);

  /// Returns k distinct indices sampled uniformly from [0, n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Underlying engine (for std::shuffle interop).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;

  // Cached inverse-CDF table for Zipf sampling, rebuilt when (n, skew)
  // changes.
  int64_t zipf_n_ = 0;
  double zipf_skew_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace mqa

#endif  // MQA_COMMON_RNG_H_
