#ifndef MQA_COMMON_LOGGING_H_
#define MQA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mqa {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level below which messages are dropped.
/// Defaults to kInfo, overridable at startup via the MQA_LOG_LEVEL
/// environment variable (debug|info|warning|error|fatal, or 0-4);
/// benchmarks raise it to kWarning to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (with level prefix) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement when the level is below the threshold.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace mqa

#define MQA_LOG_INTERNAL(level) \
  ::mqa::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Usage: MQA_LOG(INFO) << "message";
#define MQA_LOG(severity) MQA_LOG_INTERNAL(::mqa::LogLevel::k##severity)

/// Aborts with a message when `condition` is false. Active in all builds:
/// internal invariants in database-style code must not be compiled away.
#define MQA_CHECK(condition)                                     \
  if (!(condition))                                              \
  MQA_LOG_INTERNAL(::mqa::LogLevel::kFatal)                      \
      << "Check failed: " #condition " "

/// Debug-only check for hot-loop invariants (per-pair bounds and the
/// like). Compiles out under NDEBUG via a constant-false branch: the
/// condition still typechecks but is never evaluated, so it may not
/// carry side effects.
#if defined(NDEBUG)
#define MQA_DCHECK(condition)                                    \
  if (false && !(condition))                                     \
  MQA_LOG_INTERNAL(::mqa::LogLevel::kFatal)                      \
      << "Check failed: " #condition " "
#else
#define MQA_DCHECK(condition) MQA_CHECK(condition)
#endif

#endif  // MQA_COMMON_LOGGING_H_
