#include "common/logging.h"

#include <atomic>
#include <cctype>

namespace mqa {

namespace {

// Startup level: MQA_LOG_LEVEL (name or 0-4) when set, else kInfo.
int InitialLogLevel() {
  const char* env = std::getenv("MQA_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    return env[0] - '0';
  }
  std::string lower(env);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return static_cast<int>(LogLevel::kDebug);
  if (lower == "info") return static_cast<int>(LogLevel::kInfo);
  if (lower == "warning" || lower == "warn") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (lower == "error") return static_cast<int>(LogLevel::kError);
  if (lower == "fatal") return static_cast<int>(LogLevel::kFatal);
  return static_cast<int>(LogLevel::kInfo);
}

// Meyers singleton so a static constructor that logs before main still
// sees the env-derived level instead of racing static initialization.
std::atomic<int>& LogLevelFlag() {
  static std::atomic<int> level{InitialLogLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LogLevelFlag().load());
}

void SetLogLevel(LogLevel level) {
  LogLevelFlag().store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    // kWarning and above go to stderr so piping structured stdout
    // (mqa_cli --csv) stays clean even when the library complains;
    // chatty levels stay on stdout with the tool output they annotate.
    std::ostream& out =
        level_ >= LogLevel::kWarning ? std::cerr : std::cout;
    out << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace mqa
