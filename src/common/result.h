#ifndef MQA_COMMON_RESULT_H_
#define MQA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mqa {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent (Arrow's Result idiom). Accessing the value of an
/// errored Result is a programming error checked by assert.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mqa

/// Unwraps a Result into `lhs`, propagating a non-OK status to the caller.
#define MQA_ASSIGN_OR_RETURN(lhs, expr)         \
  do {                                          \
    auto _res = (expr);                         \
    if (!_res.ok()) return _res.status();       \
    lhs = std::move(_res).value();              \
  } while (false)

#endif  // MQA_COMMON_RESULT_H_
