#ifndef MQA_COMMON_STATUS_H_
#define MQA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mqa {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kInternal = 6,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight error type used across library boundaries instead of
/// exceptions (RocksDB/Arrow idiom). A Status is either OK or carries a
/// code plus message. Statuses are cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mqa

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status.
#define MQA_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::mqa::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

#endif  // MQA_COMMON_STATUS_H_
