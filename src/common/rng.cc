#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace mqa {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::GaussianInRange(double lo, double hi) {
  MQA_CHECK(lo <= hi) << "invalid range [" << lo << ", " << hi << "]";
  if (lo == hi) return lo;
  const double mean = 0.5 * (lo + hi);
  // One-sixth of the range puts [lo, hi] at +-3 sigma, so resampling
  // rejects ~0.3% of draws.
  const double stddev = (hi - lo) / 6.0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = Gaussian(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  return mean;
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

int64_t Rng::Zipf(int64_t n, double skew) {
  MQA_CHECK(n >= 1) << "Zipf needs n >= 1";
  // Rejection-inversion sampling (Hormann & Derflinger) is overkill for the
  // sizes used here; inverse CDF over cumulative weights is exact and the
  // table is cached per (n, skew).
  if (n != zipf_n_ || skew != zipf_skew_) {
    zipf_cdf_.resize(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), skew);
      zipf_cdf_[static_cast<size_t>(k - 1)] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
    zipf_n_ = n;
    zipf_skew_ = skew;
  }
  const double u = Uniform();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int64_t>(it - zipf_cdf_.begin()) + 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  MQA_CHECK(k <= n) << "cannot sample " << k << " of " << n;
  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  std::shuffle(all.begin(), all.end(), engine_);
  all.resize(static_cast<size_t>(k));
  return all;
}

}  // namespace mqa
