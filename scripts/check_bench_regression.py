#!/usr/bin/env python3
"""Perf-regression gate over the benches' machine-readable output.

Compares freshly produced BENCH_*.json files against the committed
baselines in bench/baselines/ and fails (exit 1) when a timing field
regressed by more than the tolerance, or when a deterministic count
field changed at all (a count change means the *work done* changed,
which is a correctness signal, not noise).

Usage:
    scripts/check_bench_regression.py [--fresh-dir DIR] [--baseline-dir DIR]

The fresh dir defaults to the current working directory (where the
benches drop their JSON); the baseline dir defaults to bench/baselines/
next to this script's repo root.

Field classification (schema-light, so new benches join for free):
  - "*_seconds" numeric fields are timings: fresh > baseline * (1+tol)
    is a regression, but only when the baseline is at least
    --min-seconds (tiny timings are pure noise on shared CI runners).
  - Fields in EXACT_FIELDS (pairs, candidates, pool_bytes, and the
    streaming count fields) must match exactly.
  - Everything else (derived ratios, throughputs, labels) is ignored.

Rows are matched by the value of their non-numeric fields plus "n", so
reordering rows or adding new rows never trips the gate; a *missing*
baseline row's fresh counterpart is simply new coverage, while a
baseline row with no fresh counterpart fails (coverage loss).

Escape hatch: MQA_BENCH_REBASELINE=1 copies the fresh files over the
baselines and exits 0 — for intentional perf changes, paired with a
human looking at the diff.

Environment:
  MQA_BENCH_REBASELINE=1        re-baseline instead of checking
  MQA_BENCH_REGRESSION_TOL=0.10 override the relative tolerance
"""

import argparse
import json
import os
import shutil
import sys

# "epochs", "events", "assigned", "expired" and "max_backlog" come from
# BENCH_stream.json: the streaming engine is deterministic for a given
# workload and policy, so a change in any of them means the simulated
# work itself changed.
EXACT_FIELDS = {"pairs", "candidates", "pool_bytes", "epochs", "events",
                "assigned", "expired", "max_backlog"}


def is_timing(field):
    return field.endswith("_seconds")


def row_key(row):
    """Identity of a result row: its label fields plus the size n."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or k == "n":
            parts.append((k, v))
    return tuple(parts)


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("results")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'results' array")
    indexed = {}
    for row in rows:
        indexed[row_key(row)] = row
    return indexed


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key)


def compare_file(name, baseline_path, fresh_path, tol, min_seconds):
    """Returns a list of human-readable failure strings for one file."""
    failures = []
    if not os.path.exists(fresh_path):
        return [f"{name}: fresh run produced no {os.path.basename(fresh_path)}"]
    baseline = load_results(baseline_path)
    fresh = load_results(fresh_path)

    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        if fresh_row is None:
            failures.append(f"{name}: row ({fmt_key(key)}) vanished from "
                            f"the fresh run")
            continue
        for field, base_val in base_row.items():
            if not isinstance(base_val, (int, float)) or isinstance(
                    base_val, bool):
                continue
            fresh_val = fresh_row.get(field)
            if fresh_val is None:
                failures.append(
                    f"{name}: ({fmt_key(key)}) lost field '{field}'")
                continue
            if field in EXACT_FIELDS:
                if fresh_val != base_val:
                    failures.append(
                        f"{name}: ({fmt_key(key)}) {field} changed "
                        f"{base_val} -> {fresh_val} (deterministic field; "
                        f"the measured work itself changed)")
            elif is_timing(field):
                if base_val < min_seconds:
                    continue  # below the noise floor
                if fresh_val > base_val * (1.0 + tol):
                    pct = 100.0 * (fresh_val / base_val - 1.0)
                    failures.append(
                        f"{name}: ({fmt_key(key)}) {field} regressed "
                        f"{base_val:.4f}s -> {fresh_val:.4f}s (+{pct:.1f}%, "
                        f"tolerance {100 * tol:.0f}%)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", default=".",
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory holding committed baselines "
                             "(default: bench/baselines/ in the repo)")
    parser.add_argument("--tolerance", type=float, default=float(
        os.environ.get("MQA_BENCH_REGRESSION_TOL", "0.10")),
        help="relative timing tolerance (default 0.10)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore timing fields whose baseline is below "
                             "this many seconds (noise floor)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baseline_dir or os.path.join(repo_root, "bench",
                                                     "baselines")
    if not os.path.isdir(baseline_dir):
        print(f"no baseline dir at {baseline_dir}; nothing to check")
        return 0

    baselines = sorted(f for f in os.listdir(baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no BENCH_*.json baselines in {baseline_dir}; nothing to check")
        return 0

    if os.environ.get("MQA_BENCH_REBASELINE") == "1":
        for name in baselines:
            fresh_path = os.path.join(args.fresh_dir, name)
            if not os.path.exists(fresh_path):
                print(f"re-baseline: fresh {name} missing, keeping old")
                continue
            load_results(fresh_path)  # refuse to commit malformed JSON
            shutil.copyfile(fresh_path, os.path.join(baseline_dir, name))
            print(f"re-baselined {name}")
        return 0

    all_failures = []
    for name in baselines:
        fresh_path = os.path.join(args.fresh_dir, name)
        baseline_path = os.path.join(baseline_dir, name)
        failures = compare_file(name, baseline_path, fresh_path,
                                args.tolerance, args.min_seconds)
        status = "FAIL" if failures else "ok"
        print(f"{name}: {status}")
        all_failures.extend(failures)

    if all_failures:
        print(f"\n{len(all_failures)} regression(s):", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf this perf change is intentional, regenerate baselines "
              "with MQA_BENCH_REBASELINE=1 and commit the diff.",
              file=sys.stderr)
        return 1
    print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
