#!/usr/bin/env python3
"""Imports a Gowalla-style check-in dump into an mqa-trace-v1 CSV trace.

Input rows are the SNAP check-in layout (tab- or comma-separated):

    user_id <TAB> checkin_time <TAB> latitude <TAB> longitude <TAB> location_id

`checkin_time` is ISO-8601 ("2010-10-19T23:55:27Z") or a float epoch.
Each check-in becomes one arrival: users are split into workers and
tasks by a seeded hash (--worker-fraction of users become workers, the
paper's crowdsourcing reading of a check-in stream), timestamps are
scaled linearly onto [0, --instances) and coordinates are normalized to
the unit square over the data's bounding box. Velocities and deadlines
are not part of check-in data, so they are drawn deterministically from
the seeded RNG within the paper's Table-IV ranges.

The output replays through both simulators:

    scripts/import_checkins.py loc-gowalla_totalCheckins.txt \
        -o gowalla.trace.csv --instances 15 --max-rows 20000
    mqa_cli --replay-trace=gowalla.trace.csv --csv
    mqa_cli --replay-trace=gowalla.trace.csv --stream --csv

Format spec: src/trace/README.md. Stdlib only.
"""

import argparse
import datetime
import hashlib
import math
import random
import sys


def parse_time(text):
    """Returns a float timestamp for an ISO-8601 or epoch-seconds field."""
    try:
        return float(text)
    except ValueError:
        pass
    cleaned = text.strip().replace("Z", "").replace("z", "")
    try:
        return datetime.datetime.fromisoformat(cleaned).timestamp()
    except ValueError:
        raise ValueError("unparseable check-in time: %r" % text)


def fmt(value):
    """%.17g — the shortest decimal strtod maps back to the same double."""
    return "%.17g" % value


def stable_unit_hash(user, seed):
    """Deterministic user -> [0, 1) draw, independent of PYTHONHASHSEED."""
    digest = hashlib.sha256(("%d:%s" % (seed, user)).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def main():
    parser = argparse.ArgumentParser(
        description="Gowalla-style check-ins -> mqa-trace-v1 CSV")
    parser.add_argument("input", help="check-in dump (user, time, lat, lon, "
                        "location per row; '-' for stdin)")
    parser.add_argument("-o", "--output", required=True,
                        help="trace file to write")
    parser.add_argument("--instances", type=int, default=15,
                        help="horizon in instance units (default 15)")
    parser.add_argument("--worker-fraction", type=float, default=0.5,
                        help="fraction of users mapped to workers")
    parser.add_argument("--velocity", type=float, nargs=2,
                        default=(0.2, 0.3), metavar=("LO", "HI"),
                        help="worker velocity range (Table IV)")
    parser.add_argument("--deadline", type=float, nargs=2,
                        default=(1.0, 2.0), metavar=("LO", "HI"),
                        help="task deadline range (Table IV)")
    parser.add_argument("--max-rows", type=int, default=0,
                        help="import at most N input rows (0 = all)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    if args.instances < 1:
        parser.error("--instances must be >= 1")

    rows = []
    source = sys.stdin if args.input == "-" else open(args.input)
    with source:
        for lineno, line in enumerate(source, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t") if "\t" in line else line.split(",")
            if len(fields) < 4:
                print("row %d: expected >=4 fields, got %d — skipped"
                      % (lineno, len(fields)), file=sys.stderr)
                continue
            try:
                time = parse_time(fields[1])
                lat = float(fields[2])
                lon = float(fields[3])
            except ValueError as err:
                print("row %d: %s — skipped" % (lineno, err), file=sys.stderr)
                continue
            if not all(map(math.isfinite, (time, lat, lon))):
                print("row %d: non-finite field — skipped" % lineno,
                      file=sys.stderr)
                continue
            rows.append((time, fields[0], lat, lon))
            if args.max_rows and len(rows) >= args.max_rows:
                break
    if not rows:
        print("no usable check-ins in %s" % args.input, file=sys.stderr)
        return 1

    rows.sort(key=lambda r: r[0])
    t_lo, t_hi = rows[0][0], rows[-1][0]
    lat_lo = min(r[2] for r in rows)
    lat_hi = max(r[2] for r in rows)
    lon_lo = min(r[3] for r in rows)
    lon_hi = max(r[3] for r in rows)
    horizon = float(args.instances)
    # The last check-in lands exactly on t_hi; keep it inside [0, horizon).
    horizon_cap = math.nextafter(horizon, 0.0)

    def scale(v, lo, hi):
        return 0.5 if hi <= lo else (v - lo) / (hi - lo)

    rng = random.Random(args.seed)
    workers = []
    tasks = []
    for time, user, lat, lon in rows:
        t = min(horizon * scale(time, t_lo, t_hi), horizon_cap)
        x = scale(lon, lon_lo, lon_hi)
        y = scale(lat, lat_lo, lat_hi)
        # The attribute draw must not depend on the worker/task split, so
        # changing --worker-fraction only re-labels arrivals.
        draw = rng.uniform(0.0, 1.0)
        if stable_unit_hash(user, args.seed) < args.worker_fraction:
            lo, hi = args.velocity
            workers.append((t, x, y, lo + draw * (hi - lo)))
        else:
            lo, hi = args.deadline
            tasks.append((t, x, y, lo + draw * (hi - lo)))

    with open(args.output, "w") as out:
        out.write("# mqa-trace-v1 horizon=%s\n" % fmt(horizon))
        out.write("kind,time,id,x,y,attr\n")
        out.write("# imported from %s: %d check-ins -> %d workers, %d tasks\n"
                  % (args.input, len(rows), len(workers), len(tasks)))
        # Rows are already time-sorted; ids are per-kind sequence numbers
        # in arrival order, matching the generator's (time, id) invariant.
        iw = it = 0
        while iw < len(workers) or it < len(tasks):
            take_worker = it >= len(tasks) or (
                iw < len(workers) and workers[iw][0] <= tasks[it][0])
            if take_worker:
                t, x, y, attr = workers[iw]
                out.write("w,%s,%d,%s,%s,%s\n"
                          % (fmt(t), iw, fmt(x), fmt(y), fmt(attr)))
                iw += 1
            else:
                t, x, y, attr = tasks[it]
                out.write("t,%s,%d,%s,%s,%s\n"
                          % (fmt(t), it, fmt(x), fmt(y), fmt(attr)))
                it += 1

    print("%s: %d workers + %d tasks over horizon %g"
          % (args.output, len(workers), len(tasks), horizon))
    return 0


if __name__ == "__main__":
    sys.exit(main())
