#!/usr/bin/env python3
"""Differential conformance sweep over recorded mqa-trace-v1 traces.

Replays each trace through the built ``mqa_cli`` across every combination
of assignment algorithm x spatial-index backend x thread count x engine
({batch, batch --delta-pool, stream}) and asserts the determinism
contracts on the per-epoch assignment checksums extracted from
``--run-report`` JSON:

  1. backend-equivalence  — brute/grid/rtree replay to identical bits;
  2. thread-equivalence   — 1 and 4 threads replay to identical bits
     (and --delta-pool never changes assignments);
  3. batch/stream-equivalence — for integer-time traces (recorded
     arrival streams), the streaming engine under --epoch-policy=instance
     reproduces the batch checksums byte-for-byte. Continuous-time
     traces quantize differently under batching, so for those the two
     engines are only checked for internal consistency.

This is the out-of-process twin of tests/conformance_test.cc: it proves
the *shipped binary* honors the contracts end to end, flags included.

Usage:
  scripts/run_conformance.py [--cli build/examples/mqa_cli] [TRACE ...]

With no TRACE arguments, sweeps every tests/data/*.trace.csv.
Exits non-zero on the first contract violation. See docs/TESTING.md.
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALGOS = ["greedy", "dc", "random"]
BACKENDS = ["brute", "grid", "rtree"]
THREADS = [1, 4]

# Pinned solver knobs so checksums are a pure function of (trace, algo).
BASE_FLAGS = [
    "--budget=40",
    "--unit-price=10",
    "--gamma=8",
    "--window=3",
    "--seed=5",
]


def trace_times_are_integral(path):
    """True if every record in the CSV trace has an integral timestamp.

    Binary traces are conservatively treated as continuous (the importer
    and mqa_cli both default to CSV for corpus files).
    """
    with open(path, "rb") as fh:
        if fh.read(8) == b"MQATRCB1":
            return False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("kind,"):
                continue
            time = float(line.split(",")[1])
            if time != int(time):
                return False
    return True


def run_variant(cli, trace, algo, backend, threads, engine, report_path):
    cmd = [
        cli,
        f"--replay-trace={trace}",
        f"--algo={algo}",
        f"--index={backend}",
        f"--threads={threads}",
        f"--run-report={report_path}",
    ] + BASE_FLAGS
    if engine == "stream":
        cmd += ["--stream", "--epoch-policy=instance"]
    elif engine == "delta":
        cmd += ["--delta-pool"]
    elif engine != "batch":
        raise ValueError(engine)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(
            f"FAIL: {' '.join(cmd)}\nexit={proc.returncode}\n{proc.stderr}")
    with open(report_path, encoding="utf-8") as fh:
        report = json.load(fh)
    return [epoch["checksum"] for epoch in report["epochs"]]


def sweep_trace(cli, trace, tmpdir):
    name = os.path.basename(trace)
    integral = trace_times_are_integral(trace)
    print(f"== {name} ({'integer' if integral else 'continuous'}-time)")
    failures = 0
    for algo in ALGOS:
        reference = {}  # engine-class -> (variant label, checksums)
        runs = 0
        for backend in BACKENDS:
            for threads in THREADS:
                for engine in ("batch", "delta", "stream"):
                    label = f"{algo}/{backend}/t{threads}/{engine}"
                    report = os.path.join(tmpdir, "report.json")
                    checksums = run_variant(
                        cli, trace, algo, backend, threads, engine,
                        report)
                    runs += 1
                    if not checksums:
                        sys.exit(f"FAIL: {label} produced no epochs")
                    # batch and delta-pool share one contract class; the
                    # stream engine replays raw timestamps, so it only
                    # joins that class for integer-time traces.
                    key = ("batch"
                           if engine != "stream" or integral else "stream")
                    if key not in reference:
                        reference[key] = (label, checksums)
                    elif reference[key][1] != checksums:
                        ref_label, ref = reference[key]
                        print(f"   MISMATCH {label} vs {ref_label}")
                        print(f"     {ref_label}: {' '.join(ref)}")
                        print(f"     {label}: {' '.join(checksums)}")
                        failures += 1
        status = "ok" if failures == 0 else "FAILED"
        print(f"   {algo}: {runs} runs, {status}")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "traces", nargs="*",
        help="trace files to sweep (default: tests/data/*.trace.csv)")
    parser.add_argument(
        "--cli", default=os.path.join(REPO, "build", "examples", "mqa_cli"),
        help="path to the built mqa_cli binary")
    args = parser.parse_args()

    traces = args.traces or sorted(
        glob.glob(os.path.join(REPO, "tests", "data", "*.trace.csv")))
    if not traces:
        sys.exit("no traces found; record one with mqa_cli --record-trace")
    if not os.access(args.cli, os.X_OK):
        sys.exit(f"mqa_cli not found at {args.cli}; build the repo first")

    failures = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        for trace in traces:
            failures += sweep_trace(args.cli, trace, tmpdir)
    if failures:
        sys.exit(f"{failures} contract violation(s)")
    print(f"conformance ok: {len(traces)} trace(s), all contracts hold")


if __name__ == "__main__":
    main()
