#!/usr/bin/env python3
"""Live run dashboard: follows a running mqa process through its stats
server (--url) or its growing --timeline JSONL file (--file) and renders
a top-style view — epoch/assignment rates, windowed p99 latency, backlog
and SLO state, process RSS/CPU, and the busiest counters since the last
refresh.

Sources:
  --url URL    poll URL/metrics (Prometheus text exposition) and
               URL/timeline?n=1; URL is e.g. http://127.0.0.1:9100
  --file FILE  tail an mqa-timeline-v1 JSONL file as it grows (works on
               a finished file too — shows the final snapshot)

Modes:
  default      curses dashboard, refreshed every --interval seconds;
               press q to quit
  --once       print a single plain-text frame to stdout and exit —
               the non-interactive mode CI smoke-tests against a live
               stats endpoint

No dependencies beyond the standard library.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

HEADLINE_GAUGES = (
    ("mqa.stream.backlog", "backlog"),
    ("mqa.stream.window.p99_epoch_latency_seconds", "win p99 latency s"),
    ("mqa.stream.window.p99_queue_wait", "win p99 wait"),
    ("mqa.slo.window.p99_latency_seconds", "slo p99 s"),
    ("mqa.slo.window.overrun_ratio", "slo overrun ratio"),
    ("mqa.slo.breaches_active", "slo breaches active"),
    # Incremental epoch pipeline (recorded per epoch as histograms; the
    # p50 of the run-so-far distribution is the steady-state view).
    ('mqa.epoch.churn_ratio{quantile="0.5"}', "epoch churn p50"),
    ('mqa.pool.delta.reuse_fraction{quantile="0.5"}', "pool reuse p50"),
)


def sanitize(name):
    """The Prometheus exposition rewrites '.' to '_'; timeline JSONL keeps
    dots. Look metrics up under both spellings."""
    return name.replace(".", "_")


def lookup(metrics, name):
    v = metrics.get(name)
    if v is None:
        v = metrics.get(sanitize(name))
    return v


def fetch_url(url, timeout):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8", errors="replace")


def parse_exposition(text):
    """Prometheus text exposition -> {name: value}. Summary quantile
    lines keep their label in the key."""
    values = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            continue
        name, raw = parts
        try:
            values[name] = float(raw)
        except ValueError:
            continue
    return values


class UrlSource:
    """Counters/gauges via /metrics; epoch/sim position via /timeline."""

    def __init__(self, url, timeout=5.0):
        self.base = url.rstrip("/")
        self.timeout = timeout

    def sample(self):
        metrics = parse_exposition(
            fetch_url(self.base + "/metrics", self.timeout))
        snapshot = None
        try:
            lines = fetch_url(self.base + "/timeline?n=1",
                              self.timeout).splitlines()
            if len(lines) >= 2:
                snapshot = json.loads(lines[-1])
        except (urllib.error.URLError, json.JSONDecodeError, OSError):
            pass  # timeline recorder may be off; metrics alone still work
        return metrics, snapshot

    def describe(self):
        return self.base


class FileSource:
    """Latest snapshot of a (possibly still growing) timeline file.
    Counters are reconstructed cumulatively from the per-line deltas."""

    def __init__(self, path):
        self.path = path
        self.offset = 0
        self.totals = {}
        self.last_snapshot = None

    def sample(self):
        with open(self.path, "r", encoding="utf-8") as f:
            f.seek(self.offset)
            chunk = f.read()
            self.offset = f.tell()
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # racing a partially written tail line
            if "seq" not in obj:
                continue  # header
            for name, delta in obj.get("counters", {}).items():
                self.totals[name] = self.totals.get(name, 0) + delta
            self.last_snapshot = obj
        metrics = dict(self.totals)
        if self.last_snapshot is not None:
            for name, v in self.last_snapshot.get("gauges", {}).items():
                if v is not None:
                    metrics[name] = v
            # Mirror the exposition's histogram-quantile key shape so the
            # headline lookups work against either source.
            for name, h in self.last_snapshot.get("hist", {}).items():
                if not isinstance(h, dict):
                    continue
                for label, key in (("0.5", "p50"), ("0.9", "p90"),
                                   ("0.99", "p99")):
                    v = h.get(key)
                    if v is not None:
                        metrics[f'{name}{{quantile="{label}"}}'] = v
        return metrics, self.last_snapshot

    def describe(self):
        return self.path


def render_frame(source, metrics, snapshot, prev, dt):
    """One dashboard frame as a list of lines."""
    lines = []
    lines.append(f"mqa top — {source.describe()} — "
                 f"{time.strftime('%H:%M:%S')}")
    if snapshot is not None:
        lines.append(
            f"  epoch {snapshot.get('epoch')}  sim_time "
            f"{snapshot.get('sim_time')}  wall {snapshot.get('wall_s'):.2f} s"
            f"  rss {snapshot.get('rss_bytes', 0) / 1e6:.1f} MB"
            f"  cpu {snapshot.get('cpu_s', 0.0):.2f} s"
            f"  [{snapshot.get('trigger')}]")
    lines.append("")

    lines.append("  gauges:")
    for name, label in HEADLINE_GAUGES:
        value = lookup(metrics, name)
        if value is not None:
            lines.append(f"    {label:<22} {value:>12.4f}")

    lines.append("")
    lines.append(f"  {'counter':<42} {'total':>12} {'rate/s':>10}")
    headline = {g for g, _ in HEADLINE_GAUGES} | {
        sanitize(g) for g, _ in HEADLINE_GAUGES}
    counters = {k: v for k, v in metrics.items()
                if (k.startswith("mqa.") or k.startswith("mqa_"))
                and "{" not in k and k not in headline}
    rows = []
    for name, value in counters.items():
        rate = 0.0
        if prev is not None and dt and dt > 0 and name in prev:
            rate = (value - prev[name]) / dt
        rows.append((rate, name, value))
    rows.sort(key=lambda r: (-r[0], r[1]))
    for rate, name, value in rows[:18]:
        lines.append(f"  {name:<44} {value:>12.0f} {rate:>10.1f}")
    return lines


def build_source(args):
    if args.url:
        return UrlSource(args.url)
    return FileSource(args.file)


def run_once(args):
    source = build_source(args)
    try:
        metrics, snapshot = source.sample()
    except (urllib.error.URLError, OSError) as e:
        print(f"FAIL: cannot sample {source.describe()}: {e}",
              file=sys.stderr)
        return 1
    for line in render_frame(source, metrics, snapshot, None, None):
        print(line)
    return 0


def run_curses(args):
    import curses

    source = build_source(args)

    def loop(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        prev = None
        prev_t = None
        while True:
            try:
                metrics, snapshot = source.sample()
                now = time.monotonic()
                dt = now - prev_t if prev_t is not None else None
                frame = render_frame(source, metrics, snapshot, prev, dt)
                prev, prev_t = metrics, now
            except (urllib.error.URLError, OSError) as e:
                frame = [f"mqa top — {source.describe()}",
                         f"  waiting for source: {e}"]
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(frame[:max_y - 1]):
                screen.addnstr(y, 0, line, max_x - 1)
            screen.refresh()
            deadline = time.monotonic() + args.interval
            while time.monotonic() < deadline:
                ch = screen.getch()
                if ch in (ord("q"), ord("Q")):
                    return
                time.sleep(0.05)

    curses.wrapper(loop)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--url", help="stats server base URL "
                                     "(http://127.0.0.1:PORT)")
    group.add_argument("--file", help="mqa-timeline-v1 JSONL file to tail")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh interval in seconds (default 1)")
    parser.add_argument("--once", action="store_true",
                        help="print one plain-text frame and exit")
    args = parser.parse_args()

    if args.once:
        return run_once(args)
    return run_curses(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # stdout piped to head etc.
