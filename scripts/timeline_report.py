#!/usr/bin/env python3
"""Renders an mqa-timeline-v1 JSONL artifact as time-series curves:
epoch rate, p99 assignment latency, backlog depth, RSS — the run's
story over time, where the end-of-run summaries only give totals.

Each tracked series prints one row:

  name            min / mean / max / last, plus a fixed-width ASCII
                  curve of the series downsampled to the terminal
                  (" .:-=+*#%@", scaled to the series' own range)

With --compare B the report renders both runs' summary statistics side
by side with relative deltas — the A/B view for "did the new epoch
policy move p99 latency and backlog?".

Series sources (missing ones are skipped):
  epoch_rate    mqa.epoch.count counter delta / wall_s delta
  p99_latency   mqa.stream.window.p99_epoch_latency_seconds gauge,
                falling back to the mqa.stream.epoch_latency_seconds
                histogram's cumulative p99
  backlog       mqa.stream.backlog gauge
  slo_p99       mqa.slo.window.p99_latency_seconds gauge
  breaches      mqa.slo.breaches_active gauge
  rss_mb        rss_bytes / 1e6
  cpu_rate      cpu_s delta / wall_s delta (process CPUs busy)

Usage:
  timeline_report.py A.jsonl [--compare B.jsonl] [--width N]
  timeline_report.py A.jsonl --golden expected.txt

--golden re-renders and byte-compares against the given file (the ctest
golden-file mode; exit 0 on match, 1 with a diff otherwise).
"""

import argparse
import difflib
import json
import os
import sys

GLYPHS = " .:-=+*#%@"


def load_timeline(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [line for line in f.read().splitlines() if line.strip()]
    except OSError as e:
        print(f"FAIL: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if not lines:
        print(f"FAIL: {path} is empty", file=sys.stderr)
        sys.exit(1)
    try:
        header = json.loads(lines[0])
        snaps = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as e:
        print(f"FAIL: {path}: bad JSON: {e}", file=sys.stderr)
        sys.exit(1)
    if header.get("schema") != "mqa-timeline-v1":
        print(f"FAIL: {path}: schema {header.get('schema')!r} is not "
              f"'mqa-timeline-v1'", file=sys.stderr)
        sys.exit(1)
    return header, snaps


def series_from(snaps):
    """Extracts the tracked series as {name: [float values]}."""
    out = {}

    def add(name, values):
        cleaned = [v for v in values if v is not None]
        if cleaned and any(v != 0 for v in cleaned):
            out[name] = [v if v is not None else 0.0 for v in values]

    walls = [s.get("wall_s", 0.0) for s in snaps]
    rates = []
    cpu_rates = []
    prev_wall = None
    prev_cpu = None
    for s in snaps:
        wall = s.get("wall_s", 0.0)
        dt = wall - prev_wall if prev_wall is not None else 0.0
        epochs = s.get("counters", {}).get("mqa.epoch.count", 0)
        rates.append(epochs / dt if dt > 0 else 0.0)
        cpu = s.get("cpu_s", 0.0)
        dcpu = cpu - prev_cpu if prev_cpu is not None else 0.0
        cpu_rates.append(dcpu / dt if dt > 0 else 0.0)
        prev_wall, prev_cpu = wall, cpu
    add("epoch_rate", rates)
    add("cpu_rate", cpu_rates)

    def gauge(name):
        return [s.get("gauges", {}).get(name) for s in snaps]

    p99 = gauge("mqa.stream.window.p99_epoch_latency_seconds")
    if not any(v for v in p99 if v):
        p99 = [s.get("hist", {})
                .get("mqa.stream.epoch_latency_seconds", {})
                .get("p99") for s in snaps]
    if not any(v for v in p99 if v):
        p99 = [s.get("hist", {})
                .get("mqa.epoch.wall_seconds", {})
                .get("p99") for s in snaps]
    add("p99_latency", p99)
    add("backlog", gauge("mqa.stream.backlog"))
    add("slo_p99", gauge("mqa.slo.window.p99_latency_seconds"))
    add("breaches", gauge("mqa.slo.breaches_active"))
    add("rss_mb", [s.get("rss_bytes", 0) / 1e6 for s in snaps])
    out["_wall"] = walls
    return out


def sparkline(values, width):
    """Downsamples to `width` buckets (max within each bucket), scaled to
    the series' own [min, max]."""
    if not values:
        return ""
    buckets = []
    n = len(values)
    for b in range(min(width, n)):
        lo = b * n // min(width, n)
        hi = max(lo + 1, (b + 1) * n // min(width, n))
        buckets.append(max(values[lo:hi]))
    vmin, vmax = min(buckets), max(buckets)
    span = vmax - vmin
    glyphs = []
    for v in buckets:
        if span <= 0:
            glyphs.append(GLYPHS[0] if vmax == 0 else GLYPHS[-1])
        else:
            idx = int((v - vmin) / span * (len(GLYPHS) - 1))
            glyphs.append(GLYPHS[idx])
    return "".join(glyphs)


def stats(values):
    if not values:
        return 0.0, 0.0, 0.0, 0.0
    return (min(values), sum(values) / len(values), max(values), values[-1])


def render(path, width):
    header, snaps = load_timeline(path)
    out = []
    # Basename only: the golden-file test renders from an arbitrary
    # build directory, so the report must not embed the invocation path.
    out.append(f"timeline: {os.path.basename(path)}")
    out.append(f"  schema {header['schema']}, {len(snaps)} snapshot(s), "
               f"cadence every {header.get('every_epochs', '?')} epoch(s)")
    if not snaps:
        out.append("  (no snapshots)")
        return "\n".join(out) + "\n"
    wall = snaps[-1].get("wall_s", 0.0) - snaps[0].get("wall_s", 0.0)
    out.append(f"  span {wall:.3f} s wall, epochs {snaps[0].get('epoch')} "
               f"-> {snaps[-1].get('epoch')}")
    out.append("")
    out.append(f"  {'series':<12} {'min':>10} {'mean':>10} {'max':>10} "
               f"{'last':>10}  curve")
    series = series_from(snaps)
    for name in ("epoch_rate", "p99_latency", "backlog", "slo_p99",
                 "breaches", "cpu_rate", "rss_mb"):
        values = series.get(name)
        if values is None:
            continue
        vmin, vmean, vmax, vlast = stats(values)
        out.append(f"  {name:<12} {vmin:>10.4f} {vmean:>10.4f} "
                   f"{vmax:>10.4f} {vlast:>10.4f}  "
                   f"[{sparkline(values, width)}]")
    return "\n".join(out) + "\n"


def summarize(path):
    """Scalar summary used by the A/B comparison."""
    _, snaps = load_timeline(path)
    series = series_from(snaps)
    summary = {}
    for name in ("epoch_rate", "p99_latency", "backlog", "cpu_rate",
                 "rss_mb"):
        values = series.get(name)
        if values:
            summary[f"{name}.max"] = max(values)
            summary[f"{name}.mean"] = sum(values) / len(values)
    total_epochs = sum(s.get("counters", {}).get("mqa.epoch.count", 0)
                       for s in snaps)
    if total_epochs:
        summary["epochs.total"] = float(total_epochs)
    return summary


def render_compare(path_a, path_b):
    a = summarize(path_a)
    b = summarize(path_b)
    out = [f"A: {path_a}", f"B: {path_b}", "",
           f"  {'stat':<18} {'A':>12} {'B':>12} {'delta':>9}"]
    for key in sorted(set(a) | set(b)):
        va = a.get(key)
        vb = b.get(key)
        if va is None or vb is None:
            delta = "n/a"
        elif va == 0:
            delta = "n/a" if vb != 0 else "+0.0%"
        else:
            delta = f"{100.0 * (vb / va - 1.0):+.1f}%"
        fa = f"{va:.4f}" if va is not None else "-"
        fb = f"{vb:.4f}" if vb is not None else "-"
        out.append(f"  {key:<18} {fa:>12} {fb:>12} {delta:>9}")
    return "\n".join(out) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="mqa-timeline-v1 JSONL file (run A)")
    parser.add_argument("--compare", metavar="B",
                        help="second timeline: render an A/B summary diff")
    parser.add_argument("--width", type=int, default=60,
                        help="curve width in characters (default 60)")
    parser.add_argument("--golden", metavar="EXPECTED",
                        help="byte-compare the rendered report against "
                             "this file (ctest golden mode)")
    args = parser.parse_args()

    if args.compare:
        text = render_compare(args.file, args.compare)
    else:
        text = render(args.file, args.width)

    if args.golden:
        with open(args.golden, "r", encoding="utf-8") as f:
            expected = f.read()
        if text == expected:
            print(f"ok: output matches {args.golden}")
            return 0
        sys.stdout.writelines(difflib.unified_diff(
            expected.splitlines(keepends=True),
            text.splitlines(keepends=True),
            fromfile=args.golden, tofile="rendered"))
        return 1

    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
