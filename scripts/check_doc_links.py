#!/usr/bin/env python3
"""Fails on dead relative links in the repo's Markdown files.

Scans every tracked *.md file for inline Markdown links ``[text](target)``
and verifies that each relative target exists on disk (anchors are
stripped; pure-anchor, absolute-URL and mailto links are skipped). CI
runs this so subsystem READMEs cannot drift into pointing at moved or
deleted files.

Usage: scripts/check_doc_links.py [repo_root]
"""

import os
import re
import subprocess
import sys

# Inline links only; reference-style links are not used in this repo.
# The target group stops at the first unescaped ')' — none of our paths
# contain parentheses.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def tracked_markdown_files(root):
    # --others picks up not-yet-committed docs; --exclude-standard keeps
    # build trees and other ignored paths out; -z survives paths with
    # spaces.
    out = subprocess.run(
        ["git", "ls-files", "-z", "--cached", "--others",
         "--exclude-standard", "*.md", "**/*.md"],
        cwd=root,
        check=True,
        capture_output=True,
        text=True,
    )
    return sorted(set(p for p in out.stdout.split("\0") if p))


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = []
    for md in tracked_markdown_files(root):
        md_dir = os.path.dirname(os.path.join(root, md))
        with open(os.path.join(root, md), encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                for target in LINK_RE.findall(line):
                    if target.startswith(SKIP_PREFIXES):
                        continue
                    path = target.split("#", 1)[0]
                    if not path:
                        continue
                    base = root if path.startswith("/") else md_dir
                    resolved = os.path.normpath(
                        os.path.join(base, path.lstrip("/"))
                    )
                    if not os.path.exists(resolved):
                        failures.append(f"{md}:{lineno}: dead link -> {target}")
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} dead relative link(s) found.")
        return 1
    print("all relative Markdown links resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
