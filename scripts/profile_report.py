#!/usr/bin/env python3
"""Joins a Chrome trace JSON with its mqa run report into a per-phase
hot-spot table.

For every span name the table shows:

  self_s    wall-clock self time: span durations minus the durations of
            direct children (nested spans are charged to the child)
  %epoch    self time as a share of total epoch time (sum of the
            top-level "epoch" / "stream/epoch" span durations)
  count     number of spans
  ipc       instructions per cycle over the phase's *self* counter
            deltas (span deltas are inclusive of children; the script
            subtracts child deltas the same way it does for time)
  llc_miss  cache_misses / cache_references on self deltas
  bmpki     branch misses per kilo-instruction on self deltas

Counter columns print "-" when the trace carries no counter args for a
phase (no --perf-counters, or the PMU lacked the events). The run report
contributes wall-time quantiles (p50/p99 per phase from the
mqa.phase.*.self_seconds histograms) and is where the table's config and
provenance header comes from; --trace alone still produces the timing
columns.

The closing "top SIMD targets" list names the phases to vectorize first
for ROADMAP item 5: the biggest self-time phases, annotated with what
the counters say dominates them.

Usage:
  profile_report.py --trace trace.json [--report report.json] [--top N]
  profile_report.py --trace t.json --report r.json --golden expected.txt

--golden re-renders the table and byte-compares it against the given
file (the ctest golden-file mode; exit 0 on match, 1 with a diff
otherwise).
"""

import argparse
import json
import sys

EPOCH_SPAN_NAMES = ("epoch", "stream/epoch")
COUNTER_KEYS = (
    "task_clock_ns",
    "cycles",
    "instructions",
    "cache_references",
    "cache_misses",
    "branch_misses",
)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load {what} {path}: {e}", file=sys.stderr)
        sys.exit(1)


def complete_events(trace):
    events = []
    for e in trace.get("traceEvents", []):
        if e.get("ph") != "X":
            continue
        events.append(e)
    return events


def self_times(events):
    """Computes per-span self time and self counter deltas.

    Returns (per_name, epoch_total_us): per_name maps span name to a
    dict with keys count, self_us, and one entry per counter key found;
    epoch_total_us is the summed duration of top-level epoch spans.
    """
    by_tid = {}
    for e in events:
        by_tid.setdefault(e.get("tid", 0), []).append(e)

    per_name = {}
    epoch_total_us = 0.0

    for _, tes in sorted(by_tid.items()):
        # Parents sort before children: earlier start first, longer
        # duration first on ties (the tracer writes the same order).
        tes.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, event)
        for e in tes:
            ts, dur = float(e["ts"]), float(e["dur"])
            end = ts + dur
            while stack and ts >= stack[-1][0] - 1e-9:
                stack.pop()
            name = e["name"]
            rec = per_name.setdefault(name, {"count": 0, "self_us": 0.0})
            rec["count"] += 1
            rec["self_us"] += dur
            args = e.get("args", {})
            for key in COUNTER_KEYS:
                if key in args:
                    rec[key] = rec.get(key, 0) + args[key]
            if stack:
                # Charge this span's time/counters away from the parent.
                parent = stack[-1][1]
                prec = per_name[parent["name"]]
                prec["self_us"] -= dur
                pargs = parent.get("args", {})
                for key in COUNTER_KEYS:
                    if key in args and key in pargs:
                        prec[key] = prec.get(key, 0) - args[key]
            else:
                if name in EPOCH_SPAN_NAMES:
                    epoch_total_us += dur
            stack.append((end, e))
    return per_name, epoch_total_us


def fmt_ratio(num, den, scale=1.0, digits=2):
    if den is None or num is None or den <= 0:
        return "-"
    return f"{scale * num / den:.{digits}f}"


def render(trace_path, report_path, top):
    trace = load_json(trace_path, "trace")
    report = load_json(report_path, "run report") if report_path else None

    events = complete_events(trace)
    per_name, epoch_us = self_times(events)
    if not per_name:
        print("FAIL: trace has no complete ('X') events", file=sys.stderr)
        sys.exit(1)
    if epoch_us <= 0:
        # No top-level epoch spans (e.g. a bench trace): use total self
        # time as the denominator so %self still sums to ~100.
        epoch_us = sum(r["self_us"] for r in per_name.values())

    lines = []
    if report is not None:
        git = report.get("git", {}).get("describe", "?")
        machine = report.get("machine", {})
        counters = report.get("perf_counters", {})
        lines.append(
            f"run: git {git} on {machine.get('host', '?')} "
            f"({machine.get('cpu_model') or machine.get('arch', '?')}, "
            f"{machine.get('cpus', '?')} cpus)"
        )
        lines.append(
            "perf counters: "
            + (
                "active"
                if counters.get("enabled") and counters.get("available")
                else "inactive (wall time only)"
            )
        )
        lines.append("")

    phases = (report or {}).get("phases", {})

    header = (
        f"{'phase':<26} {'count':>7} {'self_s':>10} {'%epoch':>7} "
        f"{'ipc':>6} {'llc_miss':>8} {'bmpki':>6} {'p50_s':>9} {'p99_s':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))

    ranked = sorted(
        per_name.items(), key=lambda kv: (-kv[1]["self_us"], kv[0])
    )
    for name, rec in ranked[:top]:
        self_s = rec["self_us"] / 1e6
        pct = 100.0 * rec["self_us"] / epoch_us
        ipc = fmt_ratio(rec.get("instructions"), rec.get("cycles"))
        llc = fmt_ratio(
            rec.get("cache_misses"), rec.get("cache_references"), 100.0, 1
        )
        llc = llc if llc == "-" else llc + "%"
        bmpki = fmt_ratio(
            rec.get("branch_misses"), rec.get("instructions"), 1000.0
        )
        # Bare phase name as reported in mqa.phase.<name>.self_seconds.
        bare = name.split("/")[-1]
        ph = phases.get(bare, {})
        p50 = f"{ph['p50']:.6f}" if "p50" in ph else "-"
        p99 = f"{ph['p99']:.6f}" if "p99" in ph else "-"
        lines.append(
            f"{name:<26} {rec['count']:>7} {self_s:>10.6f} {pct:>6.1f}% "
            f"{ipc:>6} {llc:>8} {bmpki:>6} {p50:>9} {p99:>9}"
        )

    # Top SIMD targets: biggest self-time phases that are real work
    # (skip the epoch roots, which are pure containers after self-time
    # subtraction... unless their self time still dominates).
    lines.append("")
    lines.append("top SIMD targets (ROADMAP item 5):")
    targets = [
        (name, rec)
        for name, rec in ranked
        if name not in EPOCH_SPAN_NAMES
    ][:3]
    for rank, (name, rec) in enumerate(targets, 1):
        notes = []
        ipc_v = None
        if rec.get("cycles"):
            ipc_v = rec.get("instructions", 0) / rec["cycles"]
            notes.append(f"ipc {ipc_v:.2f}")
            if ipc_v < 1.0:
                notes.append("stall-bound")
        if rec.get("cache_references"):
            miss = rec.get("cache_misses", 0) / rec["cache_references"]
            notes.append(f"llc miss {100 * miss:.1f}%")
            if miss > 0.3:
                notes.append("memory-bound: consider blocking/SoA")
        if rec.get("instructions"):
            bm = 1000.0 * rec.get("branch_misses", 0) / rec["instructions"]
            notes.append(f"bmpki {bm:.2f}")
            if bm > 10.0:
                notes.append("branchy: consider predication/sorting")
        note = "; ".join(notes) if notes else "no counter data"
        lines.append(
            f"  {rank}. {name}  self {rec['self_us'] / 1e6:.6f} s "
            f"({100.0 * rec['self_us'] / epoch_us:.1f}% of epoch) — {note}"
        )
    return "\n".join(lines) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", required=True, help="Chrome trace JSON")
    ap.add_argument("--report", help="mqa run-report JSON (optional)")
    ap.add_argument("--top", type=int, default=20, help="rows to print")
    ap.add_argument(
        "--golden",
        help="compare rendered output against this file instead of printing",
    )
    args = ap.parse_args()

    out = render(args.trace, args.report, args.top)
    if args.golden:
        try:
            with open(args.golden, "r", encoding="utf-8") as f:
                expected = f.read()
        except OSError as e:
            print(f"FAIL: cannot read golden file: {e}", file=sys.stderr)
            return 1
        if out != expected:
            print("FAIL: output differs from golden file", file=sys.stderr)
            import difflib

            sys.stderr.writelines(
                difflib.unified_diff(
                    expected.splitlines(keepends=True),
                    out.splitlines(keepends=True),
                    fromfile=args.golden,
                    tofile="rendered",
                )
            )
            return 1
        print(f"OK: output matches {args.golden}")
        return 0
    sys.stdout.write(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
