#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by mqa's tracer.

Checks, in order:
  1. The file parses as JSON and has the trace-event envelope
     (displayTimeUnit, traceEvents list).
  2. Every "X" event carries the required keys (name, cat, ph, ts, dur,
     pid, tid) with sane types and non-negative durations; when an event
     has an args object, every key must be either the span's integer
     payload ("v") or a known hardware-counter key with a non-negative
     integer value (the --perf-counters surface).
  3. Per thread, spans nest: any two spans either don't overlap in time
     or one contains the other (a partial overlap means broken RAII
     pairing or a non-monotonic clock).
  4. Optionally (--require-span, repeatable): the named span occurs at
     least once.
  5. Optionally (--min-coverage P): within every "epoch" / "stream/epoch"
     span, its direct phase children cover at least P percent of the
     epoch's duration — the "the trace explains where the time went"
     acceptance bar.

Also validates a metrics JSON export when given via --metrics (parses,
has counters/gauges/histograms objects, histogram stats are coherent).

Exit 0 when everything holds, 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_X_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

# Spans treated as epoch roots for the coverage check.
EPOCH_SPAN_NAMES = ("epoch", "stream/epoch")

# The only keys an X event's args object may carry: the span payload and
# the perf-counter deltas (src/obs/perf_counters.h slot order).
ALLOWED_ARG_KEYS = (
    "v",
    "task_clock_ns",
    "cycles",
    "instructions",
    "cache_references",
    "cache_misses",
    "branch_misses",
)


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def load_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc or not isinstance(doc["traceEvents"], list):
        raise ValueError("missing traceEvents array")
    if "displayTimeUnit" not in doc:
        raise ValueError("missing displayTimeUnit")
    return doc


def check_events(events):
    """Returns (spans_by_tid, errors). Spans are (start, end, name)."""
    errors = []
    by_tid = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue  # metadata (thread_name)
        if ph != "X":
            errors.append(f"event {i}: unexpected ph {ph!r}")
            continue
        for key in REQUIRED_X_KEYS:
            if key not in e:
                errors.append(f"event {i} ({e.get('name')}): missing '{key}'")
        ts, dur = e.get("ts"), e.get("dur")
        if not isinstance(ts, (int, float)) or not isinstance(
                dur, (int, float)):
            errors.append(f"event {i} ({e.get('name')}): non-numeric ts/dur")
            continue
        if dur < 0:
            errors.append(f"event {i} ({e.get('name')}): negative dur {dur}")
            continue
        args = e.get("args")
        if args is not None:
            if not isinstance(args, dict):
                errors.append(f"event {i} ({e.get('name')}): args not an "
                              f"object")
            else:
                for key, value in args.items():
                    if key not in ALLOWED_ARG_KEYS:
                        errors.append(f"event {i} ({e.get('name')}): "
                                      f"unknown arg key '{key}'")
                    elif not isinstance(value, int):
                        errors.append(f"event {i} ({e.get('name')}): arg "
                                      f"'{key}' is not an integer: {value!r}")
                    elif key != "v" and value < 0:
                        errors.append(f"event {i} ({e.get('name')}): "
                                      f"counter '{key}' is negative: {value}")
        by_tid.setdefault(e["tid"], []).append((ts, ts + dur, e["name"]))
    return by_tid, errors


def check_nesting(by_tid, epsilon=0.002):
    """Any two spans on one thread must be disjoint or nested.

    epsilon (us) absorbs the sub-nanosecond truncation of the exporter's
    fixed-precision timestamps.
    """
    errors = []
    for tid, spans in by_tid.items():
        # Start-ascending, duration-descending: a parent sharing its
        # child's start time must be visited first.
        ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in ordered:
            while stack and stack[-1][1] <= start + epsilon:
                stack.pop()
            if stack and end > stack[-1][1] + epsilon:
                errors.append(
                    f"tid {tid}: span '{name}' [{start}, {end}] partially "
                    f"overlaps '{stack[-1][2]}' [{stack[-1][0]}, "
                    f"{stack[-1][1]}]")
            stack.append((start, end, name))
    return errors


def check_coverage(by_tid, min_coverage):
    """Direct children of every epoch span must cover >= min_coverage %."""
    errors = []
    checked = 0
    for tid, spans in by_tid.items():
        ordered = sorted(spans)
        epochs = [s for s in ordered if s[2] in EPOCH_SPAN_NAMES]
        for estart, eend, ename in epochs:
            if eend - estart <= 0:
                continue
            # Direct children: contained in the epoch but not in another
            # contained epoch-child candidate. For coverage, summing the
            # union of all strictly-contained non-epoch spans' top level
            # is enough: take contained spans, merge intervals.
            contained = [(s, e) for s, e, n in ordered
                         if n not in EPOCH_SPAN_NAMES and s >= estart and
                         e <= eend]
            merged = []
            for s, e in sorted(contained):
                if merged and s <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], e))
                else:
                    merged.append((s, e))
            covered = sum(e - s for s, e in merged)
            pct = 100.0 * covered / (eend - estart)
            checked += 1
            if pct < min_coverage:
                errors.append(
                    f"tid {tid}: '{ename}' at {estart} only {pct:.1f}% "
                    f"covered by phase spans (need {min_coverage}%)")
    if checked == 0 and min_coverage > 0:
        errors.append("no epoch spans found to check coverage on")
    return errors


def check_metrics(path):
    errors = []
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"metrics: missing '{section}' object")
    for name, h in doc.get("histograms", {}).items():
        if not isinstance(h, dict):
            errors.append(f"metrics: histogram {name} is not an object")
            continue
        for key in ("count", "sum", "mean", "min", "max", "p50", "p90",
                    "p99"):
            if key not in h:
                errors.append(f"metrics: histogram {name} missing '{key}'")
        if h.get("count", 0) > 0 and None not in (h.get("min"), h.get("max")):
            if h["min"] > h["max"]:
                errors.append(f"metrics: histogram {name} min > max")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--metrics", help="metrics JSON export to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must occur at least once")
    parser.add_argument("--min-coverage", type=float, default=0.0,
                        help="min %% of each epoch span covered by phase "
                             "spans (0 disables)")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of X events expected")
    args = parser.parse_args()

    try:
        doc = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: {e}")

    by_tid, errors = check_events(doc["traceEvents"])
    errors.extend(check_nesting(by_tid))

    num_spans = sum(len(s) for s in by_tid.values())
    if num_spans < args.min_events:
        errors.append(f"only {num_spans} spans (expected >= "
                      f"{args.min_events})")

    names = {n for spans in by_tid.values() for _, _, n in spans}
    for required in args.require_span:
        if required not in names:
            errors.append(f"required span '{required}' never occurred "
                          f"(have: {sorted(names)})")

    if args.min_coverage > 0:
        errors.extend(check_coverage(by_tid, args.min_coverage))

    if args.metrics:
        try:
            errors.extend(check_metrics(args.metrics))
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{args.metrics}: {e}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"ok: {num_spans} spans on {len(by_tid)} threads"
          + (f", metrics valid" if args.metrics else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
