#!/usr/bin/env python3
"""Schema validator for mqa-timeline-v1 JSONL artifacts (--timeline /
MQA_TIMELINE / the stats server's /timeline endpoint).

Checks, in order:
  - the first line is a header object with schema == "mqa-timeline-v1"
    and the cadence/ring config keys;
  - every following line is a snapshot object carrying exactly the known
    top-level keys (an unknown key means the writer and this validator
    disagree about the schema version — fail loudly, don't guess);
  - seq is consecutive (the recorder numbers snapshots densely; a gap
    means lines were lost);
  - wall_s and cpu_s are monotone non-decreasing, rss_bytes and
    peak_rss_bytes non-negative;
  - counter values are non-negative integer *deltas* (a negative delta
    would mean a counter ran backwards);
  - histogram entries have monotone non-decreasing cumulative counts and
    ordered quantiles (p50 <= p90 <= p99 <= max);
  - trigger is one of the known trigger tags.

Usage:
  check_timeline.py FILE [--min-snapshots N]

Exits 0 when the artifact validates, 1 with a message otherwise. CI runs
this on the timeline produced by the smoke runs, in the normal and
sanitizer jobs both.
"""

import argparse
import json
import sys

HEADER_KEYS = {"schema", "every_epochs", "every_sim_seconds",
               "every_wall_seconds", "ring_capacity"}
SNAPSHOT_KEYS = {"seq", "trigger", "wall_s", "epoch", "sim_time",
                 "rss_bytes", "peak_rss_bytes", "cpu_s", "counters",
                 "gauges", "hist"}
HIST_KEYS = {"count", "p50", "p90", "p99", "max"}
TRIGGERS = {"epoch", "sim", "wall", "manual", "final"}


def fail(lineno, msg):
    print(f"FAIL: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="mqa-timeline-v1 JSONL file")
    parser.add_argument("--min-snapshots", type=int, default=1,
                        help="require at least this many snapshot lines")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            lines = [line for line in f.read().splitlines() if line.strip()]
    except OSError as e:
        print(f"FAIL: cannot read {args.file}: {e}", file=sys.stderr)
        return 1

    if not lines:
        fail(0, "empty file (no header line)")

    def parse(lineno, line):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"not valid JSON: {e}")
        if not isinstance(obj, dict):
            fail(lineno, "line is not a JSON object")
        return obj

    header = parse(1, lines[0])
    if header.get("schema") != "mqa-timeline-v1":
        fail(1, f"header schema is {header.get('schema')!r}, "
                f"want 'mqa-timeline-v1'")
    unknown = set(header) - HEADER_KEYS
    if unknown:
        fail(1, f"unknown header keys: {sorted(unknown)}")
    missing = HEADER_KEYS - set(header)
    if missing:
        fail(1, f"missing header keys: {sorted(missing)}")

    prev_seq = None
    prev_wall = None
    prev_cpu = None
    prev_hist_counts = {}
    snapshots = 0
    for lineno, line in enumerate(lines[1:], start=2):
        snap = parse(lineno, line)
        unknown = set(snap) - SNAPSHOT_KEYS
        if unknown:
            fail(lineno, f"unknown snapshot keys: {sorted(unknown)}")
        missing = SNAPSHOT_KEYS - set(snap)
        if missing:
            fail(lineno, f"missing snapshot keys: {sorted(missing)}")

        seq = snap["seq"]
        if not isinstance(seq, int):
            fail(lineno, f"seq is not an integer: {seq!r}")
        if prev_seq is not None and seq != prev_seq + 1:
            fail(lineno, f"seq jumped {prev_seq} -> {seq} (lines lost?)")
        prev_seq = seq

        if snap["trigger"] not in TRIGGERS:
            fail(lineno, f"unknown trigger {snap['trigger']!r}")

        wall = snap["wall_s"]
        if not isinstance(wall, (int, float)):
            fail(lineno, f"wall_s is not a number: {wall!r}")
        if prev_wall is not None and wall < prev_wall:
            fail(lineno, f"wall_s ran backwards: {prev_wall} -> {wall}")
        prev_wall = wall

        cpu = snap["cpu_s"]
        if not isinstance(cpu, (int, float)):
            fail(lineno, f"cpu_s is not a number: {cpu!r}")
        if prev_cpu is not None and cpu < prev_cpu:
            fail(lineno, f"cpu_s ran backwards: {prev_cpu} -> {cpu}")
        prev_cpu = cpu

        for field in ("rss_bytes", "peak_rss_bytes"):
            v = snap[field]
            if not isinstance(v, int) or v < 0:
                fail(lineno, f"{field} is not a non-negative integer: {v!r}")

        counters = snap["counters"]
        if not isinstance(counters, dict):
            fail(lineno, "counters is not an object")
        for name, delta in counters.items():
            if not isinstance(delta, int):
                fail(lineno, f"counter {name}: delta {delta!r} is not an "
                             f"integer")
            if delta < 0:
                fail(lineno, f"counter {name}: negative delta {delta} "
                             f"(counter ran backwards)")

        gauges = snap["gauges"]
        if not isinstance(gauges, dict):
            fail(lineno, "gauges is not an object")
        for name, v in gauges.items():
            if v is not None and not isinstance(v, (int, float)):
                fail(lineno, f"gauge {name}: {v!r} is not a number")

        hist = snap["hist"]
        if not isinstance(hist, dict):
            fail(lineno, "hist is not an object")
        for name, h in hist.items():
            if not isinstance(h, dict) or set(h) != HIST_KEYS:
                fail(lineno, f"hist {name}: keys {sorted(h)} != "
                             f"{sorted(HIST_KEYS)}")
            count = h["count"]
            if not isinstance(count, int) or count < 0:
                fail(lineno, f"hist {name}: bad count {count!r}")
            if count < prev_hist_counts.get(name, 0):
                fail(lineno, f"hist {name}: cumulative count shrank "
                             f"{prev_hist_counts[name]} -> {count}")
            prev_hist_counts[name] = count
            quantiles = [h["p50"], h["p90"], h["p99"], h["max"]]
            if any(q is None for q in quantiles):
                continue  # empty histogram serializes 0s; null is NaN
            if not (quantiles[0] <= quantiles[1] <= quantiles[2]
                    <= quantiles[3] + 1e-12):
                fail(lineno, f"hist {name}: quantiles out of order "
                             f"{quantiles}")
        snapshots += 1

    if snapshots < args.min_snapshots:
        print(f"FAIL: {snapshots} snapshot(s), want at least "
              f"{args.min_snapshots}", file=sys.stderr)
        return 1

    print(f"ok: {args.file}: header + {snapshots} snapshot(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
