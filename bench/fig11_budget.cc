// Reproduces paper Fig. 11 (and the WoP comparison of Section VI-A):
// quality score and running time vs the per-instance budget B on
// synthetic data, for GREEDY/D&C/RANDOM with and without prediction.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 11 — effect of budget B (synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();

  const ArrivalStream stream =
      GenerateSynthetic(bench::MakeSyntheticConfig(d));
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  for (const double b : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    bench::PaperDefaults dd = d;
    dd.budget = b * bench::Scale();
    labels.push_back("B=" + std::to_string(static_cast<int>(b)));
    rows.push_back(bench::RunAllVariants(stream, quality, dd,
                                         /*include_wop=*/true));
  }
  bench::PrintSweepTables("budget B", labels, rows);
  return 0;
}
