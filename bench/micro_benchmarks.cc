// Google-benchmark microbenchmarks for the core primitives: closed-form
// distance statistics, Eq. 7 comparison probabilities, candidate-set
// maintenance, pair-pool construction, grid prediction, and one greedy
// assignment round. These quantify the per-operation costs behind the
// figure-level benches.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/budget.h"
#include "core/candidate_set.h"
#include "core/comparators.h"
#include "core/greedy.h"
#include "core/valid_pairs.h"
#include "prediction/predictor.h"
#include "quality/range_quality.h"
#include "stats/distance_stats.h"
#include "stats/normal.h"
#include "workload/synthetic.h"

namespace {

using namespace mqa;

void BM_StdNormalCdf(benchmark::State& state) {
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StdNormalCdf(x));
    x += 1e-6;
  }
}
BENCHMARK(BM_StdNormalCdf);

void BM_SquaredDistanceMoments(benchmark::State& state) {
  const BBox a({0.1, 0.2}, {0.3, 0.4});
  const BBox b({0.6, 0.5}, {0.9, 0.8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSquaredDistanceMoments(a, b));
  }
}
BENCHMARK(BM_SquaredDistanceMoments);

void BM_DistanceBetweenBoxes(benchmark::State& state) {
  const BBox a({0.1, 0.2}, {0.3, 0.4});
  const BBox b({0.6, 0.5}, {0.9, 0.8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceBetween(a, b));
  }
}
BENCHMARK(BM_DistanceBetweenBoxes);

CandidatePair RandomPair(Rng* rng) {
  CandidatePair p;
  const double c = rng->Uniform(0.5, 5.0);
  const double q = rng->Uniform(0.5, 2.5);
  if (rng->Bernoulli(0.5)) {
    p.cost = Uncertain(c, 0.05, c - 0.4, c + 0.4);
    p.quality = Uncertain(q, 0.1, q - 0.4, q + 0.4);
    p.involves_predicted = true;
    p.existence = rng->Uniform(0.3, 1.0);
  } else {
    p.cost = Uncertain::Fixed(c);
    p.quality = Uncertain::Fixed(q);
  }
  return p;
}

PairPool RandomPool(Rng* rng, int n) {
  PairPoolBuilder builder(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    CandidatePair p = RandomPair(rng);
    p.worker_index = i;
    p.task_index = i;
    builder.Add(p);
  }
  return std::move(builder).Build();
}

void BM_ProbQualityGreater(benchmark::State& state) {
  Rng rng(7);
  const PairPool pool = RandomPool(&rng, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbQualityGreater(pool.pair(0), pool.pair(1)));
  }
}
BENCHMARK(BM_ProbQualityGreater);

void BM_CandidateSetBuild(benchmark::State& state) {
  Rng rng(11);
  const PairPool pool = RandomPool(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CandidateSet set(pool);
    for (int32_t id = 0; id < static_cast<int32_t>(pool.size()); ++id) {
      set.Offer(id);
    }
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CandidateSetBuild)->Arg(100)->Arg(1000)->Arg(10000);

ProblemInstance BenchInstance(int n, const RangeQualityModel* quality,
                              std::vector<Worker>* workers,
                              std::vector<Task>* tasks) {
  Rng rng(13);
  workers->clear();
  tasks->clear();
  for (int i = 0; i < n; ++i) {
    Worker w;
    w.id = i;
    w.location = BBox::FromPoint({rng.Uniform(), rng.Uniform()});
    w.velocity = rng.Uniform(0.2, 0.3);
    workers->push_back(w);
    Task t;
    t.id = i;
    t.location = BBox::FromPoint({rng.Uniform(), rng.Uniform()});
    t.deadline = rng.Uniform(1.0, 2.0);
    tasks->push_back(t);
  }
  return ProblemInstance(*workers, workers->size(), *tasks, tasks->size(),
                         quality, 10.0, 75.0);
}

void BM_BuildPairPool(benchmark::State& state) {
  const RangeQualityModel quality(1.0, 2.0, 3);
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  const auto inst = BenchInstance(static_cast<int>(state.range(0)), &quality,
                                  &workers, &tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPairPool(inst));
  }
}
BENCHMARK(BM_BuildPairPool)->Arg(100)->Arg(300);

// Same pool, but candidate tasks come from each backend explicitly
// (kAuto switches between them at kAutoBruteForceMaxPairs entities;
// bench/index_bench.cc covers the large-scale comparison).
void BM_BuildPairPoolBackend(benchmark::State& state) {
  const RangeQualityModel quality(1.0, 2.0, 3);
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  const auto inst = BenchInstance(static_cast<int>(state.range(0)), &quality,
                                  &workers, &tasks);
  PairPoolOptions options;
  options.backend = state.range(1) == 0 ? IndexBackend::kBruteForce
                                        : IndexBackend::kGrid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPairPool(inst, options));
  }
}
BENCHMARK(BM_BuildPairPoolBackend)
    ->Args({300, 0})
    ->Args({300, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

void BM_GreedyAssignment(benchmark::State& state) {
  const RangeQualityModel quality(1.0, 2.0, 3);
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  const auto inst = BenchInstance(static_cast<int>(state.range(0)), &quality,
                                  &workers, &tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunGreedy(inst, 0.5));
  }
}
BENCHMARK(BM_GreedyAssignment)->Arg(50)->Arg(100)->Arg(200);

void BM_GridPrediction(benchmark::State& state) {
  SyntheticConfig config;
  config.num_workers = 2000;
  config.num_tasks = 2000;
  config.num_instances = 5;
  const ArrivalStream stream = GenerateSynthetic(config);
  PredictionConfig pconfig;
  pconfig.gamma = 20;
  pconfig.window = 3;
  for (auto _ : state) {
    GridPredictor predictor(pconfig);
    for (int p = 0; p < stream.num_instances(); ++p) {
      predictor.Observe(stream.workers[static_cast<size_t>(p)],
                        stream.tasks[static_cast<size_t>(p)]);
      benchmark::DoNotOptimize(predictor.PredictNext());
    }
  }
}
BENCHMARK(BM_GridPrediction);

}  // namespace

BENCHMARK_MAIN();
