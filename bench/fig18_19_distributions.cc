// Reproduces paper Fig. 18/19 (Appendix D): quality score and running
// time over the 9 worker x task location-distribution combinations
// (G/U/Z each side) on synthetic data.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 18/19 — worker-task distribution combinations "
                     "(synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  const SpatialDistribution dists[] = {SpatialDistribution::kGaussian,
                                       SpatialDistribution::kUniform,
                                       SpatialDistribution::kZipf};

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  for (const auto worker_dist : dists) {
    for (const auto task_dist : dists) {
      SyntheticConfig config = bench::MakeSyntheticConfig(d);
      config.worker_dist.kind = worker_dist;
      config.task_dist.kind = task_dist;
      labels.push_back(std::string(SpatialDistributionCode(worker_dist)) +
                       "-" + SpatialDistributionCode(task_dist));
      rows.push_back(bench::RunAllVariants(GenerateSynthetic(config), quality,
                                           d, /*include_wop=*/false));
    }
  }
  bench::PrintSweepTables("<W-T> dists", labels, rows);
  return 0;
}
