// Incremental-epoch-pipeline bench: per-epoch pair-pool build cost as a
// function of entity churn, from-scratch vs PoolDeltaCache delta builds,
// plus the repair-vs-resolve quality/latency tradeoff.
//
// Phase 1 (pool-build sweep) evolves a worker/task population across
// epochs under the simulators' carryover contract at an exactly
// controlled churn fraction, building each epoch's pool twice — from
// scratch and through the delta cache — and timing both. Self-checking:
// every delta-built pool is compared byte-for-byte against its
// from-scratch twin, and the delta path must actually engage on every
// post-warmup epoch.
//
// Phase 2 (repair tradeoff) runs the batch simulator on the same
// workload with the full re-solve and with AssignerOptions::repair
// (churn-reachable subgraph only) and reports assigned/quality/latency
// side by side. Repair is results-changing by design; the quality delta
// is the number this bench exists to surface.
//
// MQA_CHURN_BENCH_N overrides the per-side entity count (default 4000).
// MQA_CHURN_BENCH_EPOCHS overrides the epoch count (default 10).
// MQA_CHURN_BENCH_THREADS overrides the thread count (default 4).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/assigner.h"
#include "core/pool_delta.h"
#include "core/valid_pairs.h"
#include "exec/pair_arena.h"
#include "exec/thread_pool.h"
#include "index/spatial_index.h"
#include "quality/range_quality.h"
#include "sim/simulator.h"
#include "workload/synthetic.h"

namespace mqa {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int64_t EnvSize(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoll(env) : fallback;
}

bool SamePool(const PairPool& a, const PairPool& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    const CandidatePair x = a.GetPair(static_cast<int32_t>(k));
    const CandidatePair y = b.GetPair(static_cast<int32_t>(k));
    if (x.worker_index != y.worker_index || x.task_index != y.task_index ||
        x.cost.mean() != y.cost.mean() ||
        x.cost.variance() != y.cost.variance() ||
        x.quality.mean() != y.quality.mean() ||
        x.existence != y.existence) {
      return false;
    }
  }
  return true;
}

struct ChurnRow {
  double churn;
  int64_t pairs = 0;  // total across timed epochs (deterministic)
  double scratch_seconds = 0.0;
  double delta_seconds = 0.0;
  double reuse_fraction = 0.0;  // mean over timed epochs
};

struct RepairRow {
  const char* label;
  int64_t assigned = 0;
  double quality = 0.0;
  double cost = 0.0;
  double epoch_seconds = 0.0;  // mean assign-phase seconds per epoch
};

int RunBench() {
  const int64_t n = EnvSize("MQA_CHURN_BENCH_N", 4000);
  const int epochs =
      static_cast<int>(EnvSize("MQA_CHURN_BENCH_EPOCHS", 10));
  const int threads =
      static_cast<int>(EnvSize("MQA_CHURN_BENCH_THREADS", 4));

  bench::PrintHeader(
      "Incremental epoch pipeline — pool-build cost vs churn, "
      "repair tradeoff");
  std::printf("n=%lld per side, %d epochs, %d threads\n\n",
              static_cast<long long>(n), epochs, threads);

  const RangeQualityModel quality(1.0, 2.0, 7);
  std::unique_ptr<ThreadPool> thread_pool;
  if (threads > 1) thread_pool = std::make_unique<ThreadPool>(threads);

  // --- Phase 1: pool-build sweep over exact churn fractions. ---
  const double kChurns[] = {0.0, 0.05, 0.10, 0.25, 0.50, 1.0};
  std::vector<ChurnRow> rows;
  std::printf("%7s %12s %12s %12s %8s %7s\n", "churn", "pairs",
              "scratch_s", "delta_s", "speedup", "reuse");
  for (const double churn : kChurns) {
    Rng rng(977);
    std::vector<Worker> cur_workers;
    std::vector<Task> cur_tasks;
    int64_t next_id = 0;
    auto new_worker = [&] {
      Worker w;
      w.id = next_id++;
      w.location = BBox::FromPoint({rng.Uniform(), rng.Uniform()});
      w.velocity = rng.Uniform(0.02, 0.06);
      return w;
    };
    auto new_task = [&] {
      Task t;
      t.id = next_id++;
      t.location = BBox::FromPoint({rng.Uniform(), rng.Uniform()});
      t.deadline = rng.Uniform(1.0, 3.0);
      return t;
    };
    for (int64_t i = 0; i < n; ++i) cur_workers.push_back(new_worker());
    for (int64_t j = 0; j < n; ++j) cur_tasks.push_back(new_task());
    const int64_t replaced =
        static_cast<int64_t>(churn * static_cast<double>(n) + 0.5);
    auto departs = [&](int64_t i, int epoch) {
      return (i * 13 + epoch) % n < replaced;
    };

    PoolDeltaCache cache(/*apply_deltas=*/true);
    PairArena scratch_arena;
    PairArena delta_arena;
    ChurnRow row;
    row.churn = churn;
    int timed_epochs = 0;

    for (int epoch = 0; epoch < epochs; ++epoch) {
      if (epoch > 0) {
        std::vector<Worker> kept_workers;
        for (size_t i = 0; i < cur_workers.size(); ++i) {
          if (!departs(static_cast<int64_t>(i), epoch)) {
            kept_workers.push_back(cur_workers[i]);
          }
        }
        while (static_cast<int64_t>(kept_workers.size()) < n) {
          kept_workers.push_back(new_worker());
        }
        cur_workers = std::move(kept_workers);
        std::vector<Task> kept_tasks;
        for (size_t j = 0; j < cur_tasks.size(); ++j) {
          if (departs(static_cast<int64_t>(j), epoch + 5)) continue;
          Task t = cur_tasks[j];
          t.deadline -= 0.05;
          kept_tasks.push_back(t);
        }
        while (static_cast<int64_t>(kept_tasks.size()) < n) {
          kept_tasks.push_back(new_task());
        }
        cur_tasks = std::move(kept_tasks);
      }
      const size_t ncw = cur_workers.size();
      const size_t nct = cur_tasks.size();

      std::vector<IndexEntry> task_entries;
      task_entries.reserve(nct);
      for (size_t j = 0; j < nct; ++j) {
        task_entries.push_back(IndexEntry{static_cast<int64_t>(j),
                                          cur_tasks[j].location,
                                          cur_tasks[j].deadline});
      }
      std::unique_ptr<SpatialIndex> task_index =
          CreateSpatialIndex(IndexBackend::kGrid);
      task_index->BulkLoad(task_entries);
      std::vector<IndexEntry> worker_entries;
      worker_entries.reserve(ncw);
      for (size_t i = 0; i < ncw; ++i) {
        worker_entries.push_back(IndexEntry{static_cast<int64_t>(i),
                                            cur_workers[i].location,
                                            cur_workers[i].velocity});
      }
      std::unique_ptr<SpatialIndex> worker_index =
          CreateSpatialIndex(IndexBackend::kGrid);
      worker_index->BulkLoad(worker_entries);

      cache.BeginEpoch(cur_workers, ncw, cur_tasks, nct);

      PairPoolOptions options;
      options.task_index = task_index.get();
      options.thread_pool = thread_pool.get();

      std::vector<Worker> scratch_workers = cur_workers;
      std::vector<Task> scratch_tasks = cur_tasks;
      const ProblemInstance scratch_inst(
          std::move(scratch_workers), ncw, std::move(scratch_tasks), nct,
          &quality, 10.0, 300.0);
      PairPoolOptions scratch_options = options;
      scratch_options.arena = &scratch_arena;
      scratch_arena.Reset();
      auto t0 = std::chrono::steady_clock::now();
      const PairPool scratch = BuildPairPool(scratch_inst, scratch_options);
      const double scratch_s = SecondsSince(t0);

      std::vector<Worker> delta_workers = cur_workers;
      std::vector<Task> delta_tasks = cur_tasks;
      ProblemInstance delta_inst(std::move(delta_workers), ncw,
                                 std::move(delta_tasks), nct, &quality, 10.0,
                                 300.0);
      delta_inst.set_worker_index(worker_index.get());
      delta_inst.set_pool_delta(&cache);
      PairPoolOptions delta_options = options;
      delta_options.arena = &delta_arena;
      delta_arena.Reset();
      t0 = std::chrono::steady_clock::now();
      const PairPool delta = BuildPairPool(delta_inst, delta_options);
      const double delta_s = SecondsSince(t0);

      if (!SamePool(scratch, delta)) {
        std::printf("FAIL: delta pool diverged from scratch (churn %.0f%%, "
                    "epoch %d)\n",
                    100.0 * churn, epoch);
        return 1;
      }
      if (epoch > 0 && !cache.stats().applied) {
        std::printf("FAIL: delta path did not engage (churn %.0f%%, "
                    "epoch %d)\n",
                    100.0 * churn, epoch);
        return 1;
      }
      if (epoch > 0) {  // epoch 0 is the cold build on both sides
        row.pairs += static_cast<int64_t>(scratch.size());
        row.scratch_seconds += scratch_s;
        row.delta_seconds += delta_s;
        row.reuse_fraction += cache.stats().reuse_fraction;
        ++timed_epochs;
      }
    }
    if (timed_epochs > 0) {
      row.reuse_fraction /= static_cast<double>(timed_epochs);
    }
    rows.push_back(row);
    std::printf("%6.0f%% %12lld %12.4f %12.4f %7.2fx %6.1f%%\n",
                100.0 * churn, static_cast<long long>(row.pairs),
                row.scratch_seconds, row.delta_seconds,
                row.delta_seconds > 0.0
                    ? row.scratch_seconds / row.delta_seconds
                    : 0.0,
                100.0 * row.reuse_fraction);
  }

  // --- Phase 2: repair vs full re-solve on the batch simulator. ---
  SyntheticConfig wconfig;
  wconfig.num_workers = n;
  wconfig.num_tasks = n;
  wconfig.num_instances = epochs;
  wconfig.seed = 7;
  const ArrivalStream stream = GenerateSynthetic(wconfig);

  std::vector<RepairRow> repair_rows;
  for (const bool repair : {false, true}) {
    SimulatorConfig config;
    config.budget = 150.0;
    config.unit_price = 10.0;
    config.prediction.gamma = 12;
    config.num_threads = threads;
    config.repair = repair;
    Simulator sim(config, &quality);
    AssignerOptions aopts;
    aopts.seed = 3;
    aopts.repair = repair;
    auto assigner = CreateAssigner(AssignerKind::kGreedy, aopts);
    const auto summary = sim.Run(stream, assigner.get());
    if (!summary.ok()) {
      std::printf("FAIL: %s run: %s\n", repair ? "repair" : "resolve",
                  summary.status().ToString().c_str());
      return 1;
    }
    const SimulationSummary& s = summary.value();
    RepairRow r;
    r.label = repair ? "repair" : "resolve";
    r.assigned = s.total_assigned;
    r.quality = s.total_quality;
    r.cost = s.total_cost;
    double assign_seconds = 0.0;
    for (const InstanceMetrics& m : s.per_instance) {
      assign_seconds += m.assign_seconds;
    }
    r.epoch_seconds =
        s.per_instance.empty()
            ? 0.0
            : assign_seconds / static_cast<double>(s.per_instance.size());
    repair_rows.push_back(r);
  }
  const RepairRow& resolve = repair_rows[0];
  const RepairRow& repair = repair_rows[1];
  const double quality_delta_pct =
      resolve.quality != 0.0
          ? 100.0 * (repair.quality - resolve.quality) / resolve.quality
          : 0.0;
  std::printf("\nrepair vs full re-solve (GREEDY, batch, %d epochs):\n",
              epochs);
  std::printf("%-8s %9s %11s %11s %11s\n", "solve", "assigned", "quality",
              "cost", "assign_s");
  for (const RepairRow& r : repair_rows) {
    std::printf("%-8s %9lld %11.1f %11.1f %11.5f\n", r.label,
                static_cast<long long>(r.assigned), r.quality, r.cost,
                r.epoch_seconds);
  }
  std::printf("repair quality delta: %+.2f%% (results-changing by design; "
              "the latency win pays for this)\n",
              quality_delta_pct);

  // Machine-readable record for CI history and the regression gate
  // (scripts/check_bench_regression.py): "pairs"/"assigned" are
  // deterministic exact-matched fields, the *_seconds fields are
  // tolerance-gated timings.
  if (FILE* json = std::fopen("BENCH_churn.json", "w")) {
    std::fprintf(json, "{\n  \"regime\": \"incremental-epoch-pipeline\",\n");
    std::fprintf(json, "  \"provenance\": {%s},\n",
                 bench::ProvenanceFragment().c_str());
    std::fprintf(json, "  \"results\": [\n");
    for (const ChurnRow& r : rows) {
      std::fprintf(
          json,
          "    {\"phase\": \"pool-build\", \"churn\": \"%.0f%%\", "
          "\"n\": %lld, \"pairs\": %lld, "
          "\"scratch_build_seconds\": %.6f, \"delta_build_seconds\": %.6f, "
          "\"speedup\": %.3f, \"reuse_fraction\": %.4f},\n",
          100.0 * r.churn, static_cast<long long>(n),
          static_cast<long long>(r.pairs), r.scratch_seconds,
          r.delta_seconds,
          r.delta_seconds > 0.0 ? r.scratch_seconds / r.delta_seconds : 0.0,
          r.reuse_fraction);
    }
    for (size_t i = 0; i < repair_rows.size(); ++i) {
      const RepairRow& r = repair_rows[i];
      std::fprintf(
          json,
          "    {\"phase\": \"repair\", \"solve\": \"%s\", \"n\": %lld, "
          "\"assigned\": %lld, \"quality\": %.6f, \"cost\": %.6f, "
          "\"assign_epoch_seconds\": %.6f, \"quality_delta_pct\": %.4f}%s\n",
          r.label, static_cast<long long>(n),
          static_cast<long long>(r.assigned), r.quality, r.cost,
          r.epoch_seconds, i == 1 ? quality_delta_pct : 0.0,
          i + 1 < repair_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_churn.json\n");
  } else {
    std::fprintf(stderr, "WARNING: cannot write BENCH_churn.json\n");
  }

  std::printf("\nall self-checks passed\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main() { return mqa::RunBench(); }
