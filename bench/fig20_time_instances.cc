// Reproduces paper Fig. 20 (Appendix E): quality score and running time
// vs the number R of time instances (fixed worker/task totals, so larger
// R means fewer arrivals per instance).

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 20 — effect of the number R of time instances "
                     "(synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  for (const int r : {10, 15, 20, 25}) {
    SyntheticConfig config = bench::MakeSyntheticConfig(d);
    config.num_instances = r;
    bench::PaperDefaults dd = d;
    dd.num_instances = r;
    labels.push_back("R=" + std::to_string(r));
    rows.push_back(bench::RunAllVariants(GenerateSynthetic(config), quality,
                                         dd, /*include_wop=*/false));
  }
  bench::PrintSweepTables("instances R", labels, rows);
  return 0;
}
