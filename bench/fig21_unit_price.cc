// Reproduces paper Fig. 21 (Appendix E): quality score and running time
// vs the unit price C per traveling-distance unit. Larger C makes pairs
// pricier under the same budget, reducing the selected set.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 21 — effect of the unit price C (synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);
  const ArrivalStream stream =
      GenerateSynthetic(bench::MakeSyntheticConfig(d));

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  for (const double c : {5.0, 10.0, 15.0, 20.0}) {
    bench::PaperDefaults dd = d;
    dd.unit_price = c;
    labels.push_back("C=" + std::to_string(static_cast<int>(c)));
    rows.push_back(bench::RunAllVariants(stream, quality, dd,
                                         /*include_wop=*/false));
  }
  bench::PrintSweepTables("unit price C", labels, rows);
  return 0;
}
