// Reproduces paper Fig. 16 (synthetic data) and Fig. 27 (WP vs WoP):
// quality score and running time vs the total number n of workers across
// the R instances.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 16 / Fig. 27 — effect of the number n of workers "
                     "(synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  for (const int n : {1000, 3000, 5000, 8000, 10000}) {
    SyntheticConfig config = bench::MakeSyntheticConfig(d);
    config.num_workers = static_cast<int64_t>(n * bench::Scale());
    labels.push_back("n=" + std::to_string(n / 1000) + "K");
    rows.push_back(bench::RunAllVariants(GenerateSynthetic(config), quality,
                                         d, /*include_wop=*/true));
  }
  bench::PrintSweepTables("workers n", labels, rows);
  return 0;
}
