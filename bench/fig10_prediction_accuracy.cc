// Reproduces paper Fig. 10: average per-cell relative error of the
// grid-based prediction vs the sliding-window size w, for workers and
// tasks on synthetic and real-substitute (check-in) data, plus the
// Appendix-F breakdown per worker distribution (Fig. 22's error
// counterpart).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "prediction/predictor.h"

namespace {

using namespace mqa;
using bench::Defaults;
using bench::PaperDefaults;

struct ErrorPair {
  double worker;
  double task;
};

// Streams the arrival batches through a GridPredictor and averages the
// Fig. 10 relative error over instances 1..R-1.
ErrorPair MeasureError(const ArrivalStream& stream, int window, int gamma) {
  PredictionConfig config;
  config.gamma = gamma;
  config.window = window;
  GridPredictor predictor(config);
  const Grid grid(gamma);

  double worker_sum = 0.0;
  double task_sum = 0.0;
  int count = 0;
  std::vector<int64_t> pred_w;
  std::vector<int64_t> pred_t;
  for (int p = 0; p < stream.num_instances(); ++p) {
    std::vector<Point> wp;
    for (const Worker& w : stream.workers[static_cast<size_t>(p)]) {
      wp.push_back(w.Center());
    }
    std::vector<Point> tp;
    for (const Task& t : stream.tasks[static_cast<size_t>(p)]) {
      tp.push_back(t.Center());
    }
    if (!pred_w.empty()) {
      worker_sum += GridPredictor::AverageRelativeError(pred_w,
                                                        grid.Histogram(wp));
      task_sum +=
          GridPredictor::AverageRelativeError(pred_t, grid.Histogram(tp));
      ++count;
    }
    predictor.Observe(stream.workers[static_cast<size_t>(p)],
                      stream.tasks[static_cast<size_t>(p)]);
    const Prediction pred = predictor.PredictNext();
    pred_w = pred.worker_cell_counts;
    pred_t = pred.task_cell_counts;
  }
  return {worker_sum / count, task_sum / count};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 10 — prediction accuracy vs sliding-window size w");
  const PaperDefaults d = Defaults();

  const ArrivalStream synth = GenerateSynthetic(bench::MakeSyntheticConfig(d));
  const ArrivalStream real = GenerateCheckin(bench::MakeCheckinConfig(d));

  std::printf("Average relative error (%%), %dx%d grid:\n", d.gamma, d.gamma);
  std::printf("%-4s %12s %12s %12s %12s\n", "w", "Worker(S)", "Task(S)",
              "Worker(R)", "Task(R)");
  for (int w = 1; w <= 5; ++w) {
    const ErrorPair s = MeasureError(synth, w, d.gamma);
    const ErrorPair r = MeasureError(real, w, d.gamma);
    std::printf("%-4d %12.2f %12.2f %12.2f %12.2f\n", w, 100.0 * s.worker,
                100.0 * s.task, 100.0 * r.worker, 100.0 * r.task);
  }

  // Appendix F: per worker-distribution sensitivity on synthetic data.
  std::printf("\nAppendix F — worker prediction error (%%) per worker "
              "distribution:\n");
  std::printf("%-4s %12s %12s %12s\n", "w", "GAUS", "UNIF", "ZIPF");
  for (int w = 1; w <= 5; ++w) {
    std::printf("%-4d", w);
    for (const SpatialDistribution dist :
         {SpatialDistribution::kGaussian, SpatialDistribution::kUniform,
          SpatialDistribution::kZipf}) {
      SyntheticConfig config = bench::MakeSyntheticConfig(d);
      config.worker_dist.kind = dist;
      const ErrorPair e = MeasureError(GenerateSynthetic(config), w, d.gamma);
      std::printf(" %12.2f", 100.0 * e.worker);
    }
    std::printf("\n");
  }
  return 0;
}
