// Reproduces paper Fig. 14 (synthetic data) and Fig. 25 (WP vs WoP):
// quality score and running time vs the worker velocity range [v-, v+].
// Faster workers validate long (expensive) pairs that consume the budget
// quickly, so total quality *decreases* with velocity (paper Section
// VI-B).

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader(
      "Fig. 14 / Fig. 25 — effect of velocities [v-,v+] (synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  const std::vector<std::pair<double, double>> ranges = {
      {0.1, 0.2}, {0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5}};
  for (const auto& [lo, hi] : ranges) {
    SyntheticConfig config = bench::MakeSyntheticConfig(d);
    config.velocity_lo = lo;
    config.velocity_hi = hi;
    labels.push_back("[" + std::to_string(lo).substr(0, 3) + "," +
                     std::to_string(hi).substr(0, 3) + "]");
    rows.push_back(bench::RunAllVariants(GenerateSynthetic(config), quality,
                                         d, /*include_wop=*/true));
  }
  bench::PrintSweepTables("[v-,v+]", labels, rows);
  return 0;
}
