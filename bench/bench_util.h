#ifndef MQA_BENCH_BENCH_UTIL_H_
#define MQA_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/assigner.h"
#include "quality/quality_model.h"
#include "sim/arrival_stream.h"
#include "sim/simulator.h"
#include "workload/checkin.h"
#include "workload/synthetic.h"

namespace mqa {
namespace bench {

/// Global workload scale factor in (0, 1], read once from the
/// MQA_BENCH_SCALE environment variable (default 0.25). The paper's
/// experiments use m = n = 5K entities over R = 15 instances on a 2011
/// Xeon; the default scale keeps the full bench suite around ten minutes
/// while preserving every qualitative shape. Set MQA_BENCH_SCALE=1 to run
/// at full paper scale.
double Scale();

/// Paper defaults (Table IV bold values) pre-scaled by Scale():
/// m = n = 5000 * scale, R = 15, B = 300 * scale, C = 10, [q]=[1,2],
/// [e]=[1,2], [v]=[0.2,0.3], w = 3, 20x20 grid.
struct PaperDefaults {
  int64_t num_workers;
  int64_t num_tasks;
  int num_instances;
  double budget;
  double unit_price;
  double q_lo, q_hi;
  double e_lo, e_hi;
  double v_lo, v_hi;
  int window;
  int gamma;
  uint64_t seed;
};
PaperDefaults Defaults();

/// Synthetic stream from defaults (worker Gaussian, task Zipf — the
/// paper's default combination).
SyntheticConfig MakeSyntheticConfig(const PaperDefaults& d);

/// Check-in ("real data" substitute) stream from defaults; the worker and
/// task totals follow the paper's Gowalla/Foursquare SF extraction ratio
/// (6143 : 8481), scaled.
CheckinConfig MakeCheckinConfig(const PaperDefaults& d);

/// Budget used by the real-data (check-in) figures: the paper's B = 300,
/// deliberately *not* scaled by Scale(). Per-pair travel costs depend on
/// distances, which do not shrink when the entity count is scaled down,
/// and the paper's real-data experiments run in a slack-budget regime
/// (clustered check-ins make assignments cheap). A linearly scaled
/// budget would bind hard and flip the Fig. 12/13 shapes; the unscaled
/// value preserves the regime and equals the paper's setting at full
/// scale (see EXPERIMENTS.md).
double CheckinBudget();

/// One measured algorithm variant.
struct VariantResult {
  std::string name;       // e.g. "GREEDY_WP"
  double quality = 0.0;   // total quality score (paper Eq. 1)
  double seconds = 0.0;   // mean running time per instance
  int64_t assigned = 0;
};

/// Runs the given assigner kind over `stream`, with or without
/// prediction, and returns its measured result.
VariantResult RunVariant(const ArrivalStream& stream,
                         const QualityModel& quality, AssignerKind kind,
                         bool with_prediction, const PaperDefaults& d);

/// Runs the paper's six curves (GREEDY/D&C/RANDOM x WP/WoP) when
/// `include_wop`, otherwise the three WP curves.
std::vector<VariantResult> RunAllVariants(const ArrivalStream& stream,
                                          const QualityModel& quality,
                                          const PaperDefaults& d,
                                          bool include_wop);

/// Initializes every environment-driven observability surface in one
/// place — MQA_TRACE, MQA_METRICS_JSON, MQA_RUN_REPORT,
/// MQA_PERF_COUNTERS, MQA_WATCHDOG, MQA_TIMELINE and MQA_STATS_PORT —
/// so all benches honor the same variables uniformly. PrintHeader calls
/// this; benches that print their own headers (index_bench,
/// parallel_bench, table1_example) call it directly. Idempotent.
void InitObservability();

/// The run report's {"git": ..., "machine": ...} identity pair as a JSON
/// fragment (no surrounding braces) — benches embed it in BENCH_*.json
/// as the "provenance" block so regression artifacts say which source
/// revision and hardware produced them.
std::string ProvenanceFragment();

/// Table printing: header names the figure, columns are variants, one row
/// per swept parameter value; a quality table and a running-time table
/// are printed (matching the paper's (a)/(b) subfigures).
void PrintHeader(const std::string& title);
void PrintSweepTables(
    const std::string& param_name,
    const std::vector<std::string>& param_values,
    const std::vector<std::vector<VariantResult>>& rows);

}  // namespace bench
}  // namespace mqa

#endif  // MQA_BENCH_BENCH_UTIL_H_
