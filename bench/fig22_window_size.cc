// Reproduces paper Fig. 22 (Appendix F): quality score vs the prediction
// sliding-window size w, for three worker location distributions
// (Gaussian / Uniform / Zipf) on synthetic data.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 22 — effect of the window size w per worker "
                     "distribution (synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  const std::pair<SpatialDistribution, const char*> dists[] = {
      {SpatialDistribution::kGaussian, "GAUS"},
      {SpatialDistribution::kUniform, "UNIF"},
      {SpatialDistribution::kZipf, "ZIPF"}};

  for (const auto& [dist, name] : dists) {
    SyntheticConfig config = bench::MakeSyntheticConfig(d);
    config.worker_dist.kind = dist;
    const ArrivalStream stream = GenerateSynthetic(config);

    std::vector<std::string> labels;
    std::vector<std::vector<bench::VariantResult>> rows;
    for (int w = 1; w <= 5; ++w) {
      bench::PaperDefaults dd = d;
      dd.window = w;
      labels.push_back("w=" + std::to_string(w));
      rows.push_back(bench::RunAllVariants(stream, quality, dd,
                                           /*include_wop=*/false));
    }
    std::printf("--- worker distribution: %s ---\n", name);
    bench::PrintSweepTables("window w", labels, rows);
  }
  return 0;
}
