// Reproduces paper Fig. 12 (real data) and Fig. 23 (WP vs WoP): quality
// score and running time vs the quality range [q-, q+] on the check-in
// (real-substitute) workload.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader(
      "Fig. 12 / Fig. 23 — effect of the quality range [q-,q+] (real data)");
  bench::PaperDefaults d = bench::Defaults();
  d.budget = bench::CheckinBudget();

  const ArrivalStream stream = GenerateCheckin(bench::MakeCheckinConfig(d));

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  const std::vector<std::pair<double, double>> ranges = {
      {0.25, 0.5}, {0.5, 1.0}, {1.0, 2.0}, {2.0, 3.0}, {3.0, 4.0}};
  for (const auto& [lo, hi] : ranges) {
    const RangeQualityModel quality(lo, hi, d.seed);
    labels.push_back("[" + std::to_string(lo).substr(0, 4) + "," +
                     std::to_string(hi).substr(0, 4) + "]");
    rows.push_back(bench::RunAllVariants(stream, quality, d,
                                         /*include_wop=*/true));
  }
  bench::PrintSweepTables("[q-,q+]", labels, rows);
  return 0;
}
