// Reproduces paper Fig. 13 (real data) and Fig. 24 (WP vs WoP): quality
// score and running time vs the task-deadline range [e-, e+] on the
// check-in workload. Looser deadlines admit more valid pairs; on the
// (cheap-distance) real-like data this raises achievable quality.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader(
      "Fig. 13 / Fig. 24 — effect of tasks' deadlines [e-,e+] (real data)");
  bench::PaperDefaults d = bench::Defaults();
  d.budget = bench::CheckinBudget();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  const std::vector<std::pair<double, double>> ranges = {
      {0.25, 0.5}, {0.5, 1.0}, {1.0, 2.0}, {2.0, 3.0}, {3.0, 4.0}};
  for (const auto& [lo, hi] : ranges) {
    CheckinConfig config = bench::MakeCheckinConfig(d);
    config.deadline_lo = lo;
    config.deadline_hi = hi;
    labels.push_back("[" + std::to_string(lo).substr(0, 4) + "," +
                     std::to_string(hi).substr(0, 4) + "]");
    rows.push_back(bench::RunAllVariants(GenerateCheckin(config), quality, d,
                                         /*include_wop=*/true));
  }
  bench::PrintSweepTables("[e-,e+]", labels, rows);
  return 0;
}
