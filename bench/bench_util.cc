#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/run_report.h"
#include "obs/stats_server.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace mqa {
namespace bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("MQA_BENCH_SCALE");
    if (env == nullptr) return 0.25;
    const double v = std::atof(env);
    return v > 0.0 && v <= 1.0 ? v : 0.25;
  }();
  return scale;
}

PaperDefaults Defaults() {
  PaperDefaults d;
  const double s = Scale();
  d.num_workers = std::max<int64_t>(60, static_cast<int64_t>(5000 * s));
  d.num_tasks = std::max<int64_t>(60, static_cast<int64_t>(5000 * s));
  d.num_instances = 15;
  d.budget = 300.0 * s;
  d.unit_price = 10.0;
  d.q_lo = 1.0;
  d.q_hi = 2.0;
  d.e_lo = 1.0;
  d.e_hi = 2.0;
  d.v_lo = 0.2;
  d.v_hi = 0.3;
  d.window = 3;
  d.gamma = 20;
  d.seed = 20170419;  // ICDE 2017
  return d;
}

SyntheticConfig MakeSyntheticConfig(const PaperDefaults& d) {
  SyntheticConfig c;
  c.num_workers = d.num_workers;
  c.num_tasks = d.num_tasks;
  c.num_instances = d.num_instances;
  c.worker_dist.kind = SpatialDistribution::kGaussian;
  c.task_dist.kind = SpatialDistribution::kZipf;
  c.velocity_lo = d.v_lo;
  c.velocity_hi = d.v_hi;
  c.deadline_lo = d.e_lo;
  c.deadline_hi = d.e_hi;
  c.seed = d.seed;
  return c;
}

CheckinConfig MakeCheckinConfig(const PaperDefaults& d) {
  CheckinConfig c;
  const double s = Scale();
  c.num_workers = std::max<int64_t>(80, static_cast<int64_t>(6143 * s));
  c.num_tasks = std::max<int64_t>(80, static_cast<int64_t>(8481 * s));
  c.num_instances = d.num_instances;
  c.velocity_lo = d.v_lo;
  c.velocity_hi = d.v_hi;
  c.deadline_lo = d.e_lo;
  c.deadline_hi = d.e_hi;
  c.seed = d.seed;
  return c;
}

double CheckinBudget() { return 300.0; }

VariantResult RunVariant(const ArrivalStream& stream,
                         const QualityModel& quality, AssignerKind kind,
                         bool with_prediction, const PaperDefaults& d) {
  SimulatorConfig config;
  config.budget = d.budget;
  config.unit_price = d.unit_price;
  config.use_prediction = with_prediction;
  config.prediction.gamma = d.gamma;
  config.prediction.window = d.window;
  config.prediction.seed = d.seed;
  // The paper's evaluation replays check-in/synthetic arrivals per
  // subinterval; finished workers do not teleport back into the pool at
  // task locations. Rejoin stays available as a Simulator feature and is
  // exercised by the examples and tests.
  config.workers_rejoin = false;

  AssignerOptions options;
  options.seed = d.seed;
  auto assigner = CreateAssigner(kind, options);
  Simulator sim(config, &quality);
  const auto summary = sim.Run(stream, assigner.get());
  MQA_CHECK(summary.ok()) << summary.status();

  VariantResult out;
  out.name = std::string(AssignerKindToString(kind)) +
             (with_prediction ? "_WP" : "_WoP");
  out.quality = summary.value().total_quality;
  out.seconds = summary.value().avg_cpu_seconds;
  out.assigned = summary.value().total_assigned;
  return out;
}

std::vector<VariantResult> RunAllVariants(const ArrivalStream& stream,
                                          const QualityModel& quality,
                                          const PaperDefaults& d,
                                          bool include_wop) {
  std::vector<VariantResult> out;
  const AssignerKind kinds[] = {AssignerKind::kGreedy,
                                AssignerKind::kDivideConquer,
                                AssignerKind::kRandom};
  for (const auto kind : kinds) {
    out.push_back(RunVariant(stream, quality, kind, true, d));
  }
  if (include_wop) {
    for (const auto kind : kinds) {
      out.push_back(RunVariant(stream, quality, kind, false, d));
    }
  }
  return out;
}

void InitObservability() {
  Tracer::InitFromEnv();
  MetricsRegistry::InitFromEnv();
  RunReport::InitFromEnv();
  PerfCounters::InitFromEnv();
  Watchdog::InitFromEnv();
  TimelineRecorder::InitFromEnv();
  StatsServer::InitFromEnv();
  RunReport::Get().SetConfig("bench_scale", Scale());
}

std::string ProvenanceFragment() { return RunReport::ProvenanceFragment(); }

void PrintHeader(const std::string& title) {
  // Every bench calls this first, so the MQA_* observability variables
  // work on all of them without per-bench plumbing.
  InitObservability();
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(workload scale %.2f of the paper's; set MQA_BENCH_SCALE=1 "
              "for full scale)\n\n",
              Scale());
}

void PrintSweepTables(
    const std::string& param_name,
    const std::vector<std::string>& param_values,
    const std::vector<std::vector<VariantResult>>& rows) {
  MQA_CHECK(param_values.size() == rows.size()) << "row count mismatch";
  if (rows.empty()) return;

  const auto print_table = [&](const char* what, bool quality) {
    std::printf("%s:\n", what);
    std::printf("%-14s", param_name.c_str());
    for (const auto& v : rows[0]) std::printf(" %12s", v.name.c_str());
    std::printf("\n");
    for (size_t r = 0; r < rows.size(); ++r) {
      std::printf("%-14s", param_values[r].c_str());
      for (const auto& v : rows[r]) {
        if (quality) {
          std::printf(" %12.1f", v.quality);
        } else {
          std::printf(" %12.4f", v.seconds);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  };
  print_table("Quality score", true);
  print_table("Running time (s per instance)", false);
}

}  // namespace bench
}  // namespace mqa
