// Brute-force vs grid-indexed valid-pair generation at 1k/10k/50k
// workers x tasks, reporting wall time, emitted pairs and pairs/sec.
//
// Two reach regimes: "city" (velocity 0.02-0.03, the hyperlocal setting
// where a worker covers a few blocks per instance — reach radius ~0.05 of
// the data space) and "paper" (Table IV velocities 0.2-0.3, radius up to
// 0.6 — most pairs valid, so indexing can only help marginally). The
// speedup claim in CHANGES.md is the city regime at 10k x 10k.
//
// MQA_INDEX_BENCH_MAX caps the instance size (default 50000).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/valid_pairs.h"
#include "quality/range_quality.h"
#include "tests/test_util.h"

namespace mqa {
namespace {

using testing_util::MakeTask;
using testing_util::MakeWorker;

ProblemInstance UniformInstance(int n, double v_lo, double v_hi,
                                const QualityModel* quality, Rng* rng) {
  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers.push_back(MakeWorker(i, rng->Uniform(), rng->Uniform(),
                                 rng->Uniform(v_lo, v_hi)));
  }
  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    tasks.push_back(
        MakeTask(j, rng->Uniform(), rng->Uniform(), rng->Uniform(1.0, 2.0)));
  }
  return ProblemInstance(std::move(workers), static_cast<size_t>(n),
                         std::move(tasks), static_cast<size_t>(n), quality,
                         /*unit_price=*/10.0, /*budget=*/300.0);
}

double TimePool(const ProblemInstance& instance, IndexBackend backend,
                int reps, size_t* num_pairs) {
  PairPoolOptions options;
  options.backend = backend;
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const PairPool pool = BuildPairPool(instance, options);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (s < best) best = s;
    *num_pairs = pool.pairs.size();
  }
  return best;
}

void RunRegime(const char* name, double v_lo, double v_hi,
               const std::vector<int>& sizes, int max_n) {
  const RangeQualityModel quality(1.0, 2.0);
  std::printf("-- %s regime (velocity %.2f-%.2f, deadline 1-2) --\n", name,
              v_lo, v_hi);
  std::printf("%8s %12s %12s %14s %12s %14s %9s\n", "n", "pairs",
              "brute_s", "brute_pairs/s", "grid_s", "grid_pairs/s", "speedup");
  for (const int n : sizes) {
    if (n > max_n) continue;
    Rng rng(42 + n);
    const ProblemInstance instance = UniformInstance(n, v_lo, v_hi, &quality,
                                                     &rng);
    size_t pairs_brute = 0;
    size_t pairs_grid = 0;
    // The brute pass is quadratic; run it once. The grid pass is cheap
    // enough to take the best of three.
    const double brute_s =
        TimePool(instance, IndexBackend::kBruteForce, 1, &pairs_brute);
    const double grid_s = TimePool(instance, IndexBackend::kGrid,
                                   n <= 10000 ? 3 : 1, &pairs_grid);
    if (pairs_brute != pairs_grid) {
      std::fprintf(stderr, "FATAL: pair pools diverged (%zu vs %zu)\n",
                   pairs_brute, pairs_grid);
      std::exit(1);
    }
    std::printf("%8d %12zu %12.4f %14.3e %12.4f %14.3e %8.1fx\n", n,
                pairs_brute, brute_s,
                static_cast<double>(pairs_brute) / brute_s, grid_s,
                static_cast<double>(pairs_grid) / grid_s, brute_s / grid_s);
  }
}

}  // namespace
}  // namespace mqa

int main() {
  int max_n = 50000;
  if (const char* cap = std::getenv("MQA_INDEX_BENCH_MAX")) {
    max_n = std::atoi(cap);
  }
  mqa::RunRegime("city", 0.02, 0.03, {1000, 10000, 50000}, max_n);
  // Paper velocities make most pairs valid; pool emission dominates and
  // the pool itself is quadratic-sized, so 50k is out of reach for any
  // enumeration strategy and the regime stops at 10k.
  mqa::RunRegime("paper", 0.2, 0.3, {1000, 10000}, max_n);
  return 0;
}
