// Brute-force vs grid-indexed valid-pair generation at 1k/10k/50k
// workers x tasks, reporting wall time, emitted pairs and pairs/sec.
//
// Two reach regimes: "city" (velocity 0.02-0.03, the hyperlocal setting
// where a worker covers a few blocks per instance — reach radius ~0.05 of
// the data space) and "paper" (Table IV velocities 0.2-0.3, radius up to
// 0.6 — most pairs valid, so indexing can only help marginally). The
// speedup claim in CHANGES.md is the city regime at 10k x 10k.
//
// The third phase measures pool *materialization* on the dense "paper"
// regime (the post-PR-1 bottleneck): columnar build time (lazy vs eager
// statistics), steady-state arena-reuse build time, bytes/pair and arena
// footprint, self-checking lazy-vs-eager equality, and emits the numbers
// as BENCH_pairpool.json.
//
// The fourth phase benchmarks the raw index backends (brute/grid/rtree)
// on the paper's Fig. 18/19 location distributions — Uniform, Zipf and
// Gaussian-cluster worker/task combos via src/workload/spatial_dist —
// timing BulkLoad and the per-worker QueryReachable scan separately,
// self-checking that every backend visits the identical candidate set,
// and emitting BENCH_rtree.json.
//
// MQA_INDEX_BENCH_MAX caps the instance size (default 50000);
// MQA_BENCH_SCALE scales the pool-phase and skew-phase sizes (default 1).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/valid_pairs.h"
#include "exec/pair_arena.h"
#include "index/spatial_index.h"
#include "bench/bench_util.h"
#include "quality/range_quality.h"
#include "tests/test_util.h"
#include "workload/spatial_dist.h"

namespace mqa {
namespace {

using testing_util::MakePredictedTask;
using testing_util::MakePredictedWorker;
using testing_util::MakeTask;
using testing_util::MakeWorker;

double Now(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ProblemInstance UniformInstance(int n, double v_lo, double v_hi,
                                const QualityModel* quality, Rng* rng) {
  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers.push_back(MakeWorker(i, rng->Uniform(), rng->Uniform(),
                                 rng->Uniform(v_lo, v_hi)));
  }
  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    tasks.push_back(
        MakeTask(j, rng->Uniform(), rng->Uniform(), rng->Uniform(1.0, 2.0)));
  }
  return ProblemInstance(std::move(workers), static_cast<size_t>(n),
                         std::move(tasks), static_cast<size_t>(n), quality,
                         /*unit_price=*/10.0, /*budget=*/300.0);
}

/// Dense paper-regime instance with `n` current workers/tasks plus 10%
/// predicted entities — the simulator's input shape, so the lazy Cases
/// 1-3 machinery is on the measured path.
ProblemInstance MixedPaperInstance(int n, const QualityModel* quality,
                                   Rng* rng) {
  const int n_pred = n / 10;
  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(n + n_pred));
  for (int i = 0; i < n; ++i) {
    workers.push_back(MakeWorker(i, rng->Uniform(), rng->Uniform(),
                                 rng->Uniform(0.2, 0.3)));
  }
  for (int i = 0; i < n_pred; ++i) {
    workers.push_back(MakePredictedWorker(
        100000 + i,
        BBox::KernelBox({rng->Uniform(), rng->Uniform()}, 0.05, 0.05),
        rng->Uniform(0.2, 0.3)));
  }
  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(n + n_pred));
  for (int j = 0; j < n; ++j) {
    tasks.push_back(
        MakeTask(j, rng->Uniform(), rng->Uniform(), rng->Uniform(1.0, 2.0)));
  }
  for (int j = 0; j < n_pred; ++j) {
    tasks.push_back(MakePredictedTask(
        100000 + j,
        BBox::KernelBox({rng->Uniform(), rng->Uniform()}, 0.05, 0.05),
        rng->Uniform(1.0, 2.0)));
  }
  return ProblemInstance(std::move(workers), static_cast<size_t>(n),
                         std::move(tasks), static_cast<size_t>(n), quality,
                         /*unit_price=*/10.0, /*budget=*/300.0);
}

double TimePool(const ProblemInstance& instance, IndexBackend backend,
                int reps, size_t* num_pairs) {
  PairPoolOptions options;
  options.backend = backend;
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const PairPool pool = BuildPairPool(instance, options);
    const double s = Now(start);
    if (s < best) best = s;
    *num_pairs = pool.size();
  }
  return best;
}

void RunRegime(const char* name, double v_lo, double v_hi,
               const std::vector<int>& sizes, int max_n) {
  const RangeQualityModel quality(1.0, 2.0);
  std::printf("-- %s regime (velocity %.2f-%.2f, deadline 1-2) --\n", name,
              v_lo, v_hi);
  std::printf("%8s %12s %12s %14s %12s %14s %9s\n", "n", "pairs",
              "brute_s", "brute_pairs/s", "grid_s", "grid_pairs/s", "speedup");
  for (const int n : sizes) {
    if (n > max_n) continue;
    Rng rng(42 + n);
    const ProblemInstance instance = UniformInstance(n, v_lo, v_hi, &quality,
                                                     &rng);
    size_t pairs_brute = 0;
    size_t pairs_grid = 0;
    // The brute pass is quadratic; run it once. The grid pass is cheap
    // enough to take the best of three.
    const double brute_s =
        TimePool(instance, IndexBackend::kBruteForce, 1, &pairs_brute);
    const double grid_s = TimePool(instance, IndexBackend::kGrid,
                                   n <= 10000 ? 3 : 1, &pairs_grid);
    if (pairs_brute != pairs_grid) {
      std::fprintf(stderr, "FATAL: pair pools diverged (%zu vs %zu)\n",
                   pairs_brute, pairs_grid);
      std::exit(1);
    }
    std::printf("%8d %12zu %12.4f %14.3e %12.4f %14.3e %8.1fx\n", n,
                pairs_brute, brute_s,
                static_cast<double>(pairs_brute) / brute_s, grid_s,
                static_cast<double>(pairs_grid) / grid_s, brute_s / grid_s);
  }
}

struct PoolPhaseResult {
  int n = 0;
  size_t pairs = 0;
  double build_lazy_s = 0.0;    // fresh arena, lazy statistics
  double build_eager_s = 0.0;   // fresh arena, eager statistics
  double build_reuse_s = 0.0;   // steady state: arena reused across builds
  int64_t pool_bytes = 0;
  double bytes_per_pair = 0.0;
  int64_t arena_slabs = 0;
  int64_t arena_peak_bytes = 0;
};

/// Measures columnar pool materialization on one mixed instance.
PoolPhaseResult MeasurePoolPhase(const ProblemInstance& instance, int n,
                                 int reps) {
  PoolPhaseResult result;
  result.n = n;

  PairPoolOptions lazy_options;
  lazy_options.backend = IndexBackend::kGrid;
  PairPoolOptions eager_options = lazy_options;
  eager_options.eager_stats = true;

  result.build_lazy_s = 1e100;
  result.build_eager_s = 1e100;
  for (int r = 0; r < reps; ++r) {
    {
      const auto start = std::chrono::steady_clock::now();
      const PairPool pool = BuildPairPool(instance, lazy_options);
      result.build_lazy_s = std::min(result.build_lazy_s, Now(start));
      result.pairs = pool.size();
      const PairPoolStats stats = pool.Stats();
      result.pool_bytes = stats.pool_bytes;
      result.bytes_per_pair =
          pool.empty() ? 0.0
                       : static_cast<double>(stats.pool_bytes) /
                             static_cast<double>(pool.size());
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const PairPool pool = BuildPairPool(instance, eager_options);
      result.build_eager_s = std::min(result.build_eager_s, Now(start));
    }
  }

  // Steady state: one external arena reused across epochs (the simulator
  // path). The first build grows the slabs; later builds allocate
  // nothing.
  PairArena arena;
  result.build_reuse_s = 1e100;
  PairPoolOptions reuse_options = lazy_options;
  reuse_options.arena = &arena;
  for (int r = 0; r < reps + 2; ++r) {
    arena.Reset();
    const auto start = std::chrono::steady_clock::now();
    const PairPool pool = BuildPairPool(instance, reuse_options);
    if (r > 0) {  // skip the cold build that grows the arena
      result.build_reuse_s = std::min(result.build_reuse_s, Now(start));
    }
    const PairPoolStats stats = pool.Stats();
    result.arena_slabs = stats.arena_slabs;
    result.arena_peak_bytes = stats.arena_peak_bytes;
  }

  // Self-check: lazy and eager materialization must be byte-identical.
  const PairPool lazy = BuildPairPool(instance, lazy_options);
  const PairPool eager = BuildPairPool(instance, eager_options);
  MQA_CHECK(lazy.size() == eager.size()) << "pool size diverged";
  const size_t stride = lazy.size() > 10000 ? lazy.size() / 10000 : 1;
  for (size_t k = 0; k < lazy.size(); k += stride) {
    const CandidatePair a = lazy.GetPair(static_cast<int32_t>(k));
    const CandidatePair b = eager.GetPair(static_cast<int32_t>(k));
    MQA_CHECK(a.worker_index == b.worker_index &&
              a.task_index == b.task_index &&
              a.cost.mean() == b.cost.mean() &&
              a.quality.mean() == b.quality.mean() &&
              a.quality.variance() == b.quality.variance() &&
              a.existence == b.existence)
        << "lazy vs eager materialization diverged at pair " << k;
  }
  return result;
}

void RunPoolPhase(const std::vector<int>& sizes, int max_n) {
  const RangeQualityModel quality(1.0, 2.0);
  std::printf(
      "\n-- pairpool materialization phase (paper regime + 10%% predicted) "
      "--\n");
  std::printf("%8s %12s %10s %10s %10s %8s %7s %10s\n", "n", "pairs",
              "lazy_s", "eager_s", "reuse_s", "B/pair", "slabs", "Mpairs/s");

  std::vector<PoolPhaseResult> results;
  for (const int n : sizes) {
    if (n > max_n) continue;
    Rng rng(4242 + n);
    const ProblemInstance instance = MixedPaperInstance(n, &quality, &rng);
    const PoolPhaseResult r = MeasurePoolPhase(instance, n, n <= 2000 ? 3 : 1);
    results.push_back(r);
    std::printf("%8d %12zu %10.4f %10.4f %10.4f %8.1f %7lld %10.3f\n", r.n,
                r.pairs, r.build_lazy_s, r.build_eager_s, r.build_reuse_s,
                r.bytes_per_pair, static_cast<long long>(r.arena_slabs),
                static_cast<double>(r.pairs) / r.build_reuse_s / 1e6);
  }

  // Machine-readable record for CI history and the PR description.
  FILE* json = std::fopen("BENCH_pairpool.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write BENCH_pairpool.json\n");
    return;
  }
  std::fprintf(json, "{\n  \"regime\": \"paper+10%%predicted\",\n");
  std::fprintf(json, "  \"provenance\": {%s},\n",
               bench::ProvenanceFragment().c_str());
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const PoolPhaseResult& r = results[i];
    std::fprintf(
        json,
        "    {\"n\": %d, \"pairs\": %zu, \"build_lazy_seconds\": %.6f, "
        "\"build_eager_seconds\": %.6f, \"build_reuse_seconds\": %.6f, "
        "\"pool_bytes\": %lld, \"bytes_per_pair\": %.2f, "
        "\"arena_slabs\": %lld, \"arena_peak_bytes\": %lld, "
        "\"pairs_per_second_steady\": %.0f}%s\n",
        r.n, r.pairs, r.build_lazy_s, r.build_eager_s, r.build_reuse_s,
        static_cast<long long>(r.pool_bytes), r.bytes_per_pair,
        static_cast<long long>(r.arena_slabs),
        static_cast<long long>(r.arena_peak_bytes),
        static_cast<double>(r.pairs) / r.build_reuse_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_pairpool.json\n");
}

// --- skewed-distribution index phase ----------------------------------------

/// One (worker-dist, task-dist) combo in the paper's Fig. 18/19 coding:
/// "U-Z" = uniform workers querying Zipf-distributed tasks.
struct SkewRegime {
  const char* name;
  SpatialDistConfig worker_dist;
  SpatialDistConfig task_dist;
};

struct SkewBackendResult {
  double build_s = 1e100;
  double query_s = 1e100;
  size_t candidates = 0;
  uint64_t checksum = 0;
};

/// Times BulkLoad and the per-worker QueryReachable scan separately; the
/// (count, checksum) pair certifies that every backend visited the
/// identical candidate set.
SkewBackendResult MeasureSkewBackend(IndexBackend backend,
                                     const std::vector<IndexEntry>& tasks,
                                     const std::vector<Worker>& workers,
                                     double max_deadline, int reps) {
  SkewBackendResult r;
  for (int rep = 0; rep < reps; ++rep) {
    const std::unique_ptr<SpatialIndex> index = CreateSpatialIndex(backend);
    auto start = std::chrono::steady_clock::now();
    index->BulkLoad(tasks);
    r.build_s = std::min(r.build_s, Now(start));

    size_t candidates = 0;
    uint64_t checksum = 0;
    start = std::chrono::steady_clock::now();
    for (const Worker& w : workers) {
      index->QueryReachable(w.location, w.velocity, max_deadline,
                            [&](int64_t id, const BBox&, double) {
                              ++candidates;
                              checksum += static_cast<uint64_t>(id) *
                                          uint64_t{2654435761};
                            });
    }
    r.query_s = std::min(r.query_s, Now(start));
    r.candidates = candidates;
    r.checksum = checksum;
  }
  return r;
}

void RunSkewPhase(const std::vector<int>& sizes, int max_n) {
  // City-regime reach (velocity 0.02-0.03, deadlines 1-2): the radius a
  // hyperlocal worker actually covers, so query cost is index-bound, not
  // emission-bound. Task deadlines double as the QueryReachable pruning
  // bound.
  constexpr double kDeadlineLo = 1.0, kDeadlineHi = 2.0;

  SpatialDistConfig uniform;
  SpatialDistConfig zipf;
  zipf.kind = SpatialDistribution::kZipf;
  zipf.zipf_skew = 0.9;  // sharper than the paper's 0.3: the stress case
  SpatialDistConfig cluster;
  cluster.kind = SpatialDistribution::kGaussian;
  cluster.gaussian_sigma = 0.05;  // one tight downtown cluster

  const SkewRegime regimes[] = {
      {"U-U", uniform, uniform},  // baseline: grid's home turf
      {"U-Z", uniform, zipf},     // uniform demand over clustered supply
      {"U-G", uniform, cluster},
      {"Z-Z", zipf, zipf},  // everything piled into the same corner
      {"G-G", cluster, cluster},
  };
  const IndexBackend backends[] = {IndexBackend::kBruteForce,
                                   IndexBackend::kGrid, IndexBackend::kRTree};

  std::printf(
      "\n-- skewed-distribution index phase (city reach, worker-dist - "
      "task-dist) --\n");
  std::printf("%6s %8s %12s %5s %12s %12s %12s %9s\n", "combo", "n",
              "candidates", "bknd", "build_s", "query_s", "queries/s",
              "q_speedup");

  FILE* json = std::fopen("BENCH_rtree.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write BENCH_rtree.json\n");
  } else {
    std::fprintf(json, "{\n  \"reach\": \"city (v 0.02-0.03, e 1-2)\",\n");
    std::fprintf(json, "  \"provenance\": {%s},\n",
                 bench::ProvenanceFragment().c_str());
    std::fprintf(json, "  \"results\": [\n");
  }
  bool first_row = true;

  for (const SkewRegime& regime : regimes) {
    for (const int n : sizes) {
      if (n > max_n || n < 1) continue;
      Rng rng(9000 + n);
      std::vector<IndexEntry> tasks;
      tasks.reserve(static_cast<size_t>(n));
      for (int64_t j = 0; j < n; ++j) {
        tasks.push_back({j, BBox::FromPoint(SampleLocation(regime.task_dist,
                                                           &rng)),
                         rng.Uniform(kDeadlineLo, kDeadlineHi)});
      }
      std::vector<Worker> workers;
      workers.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        const Point c = SampleLocation(regime.worker_dist, &rng);
        workers.push_back(MakeWorker(i, c.x, c.y, rng.Uniform(0.02, 0.03)));
      }

      // The brute query pass is quadratic; skip it past 10k (like the
      // city regime's 50k row, it would dominate the whole bench). The
      // divergence self-check then falls back to grid-vs-rtree, so the
      // backends are always cross-checked against each other.
      const int baseline = n <= 10000 ? 0 : 1;
      SkewBackendResult results[3];
      for (int b = baseline; b < 3; ++b) {
        results[b] = MeasureSkewBackend(backends[b], tasks, workers,
                                        kDeadlineHi, n <= 10000 ? 3 : 2);
        if (b > baseline &&
            (results[b].candidates != results[baseline].candidates ||
             results[b].checksum != results[baseline].checksum)) {
          std::fprintf(stderr,
                       "FATAL: %s candidate set diverged from %s "
                       "(%zu vs %zu)\n",
                       IndexBackendToString(backends[b]),
                       IndexBackendToString(backends[baseline]),
                       results[b].candidates, results[baseline].candidates);
          std::exit(1);
        }
      }

      const double grid_query = results[1].query_s;
      for (int b = baseline; b < 3; ++b) {
        const SkewBackendResult& r = results[b];
        std::printf("%6s %8d %12zu %5s %12.4f %12.4f %12.3e %8.2fx\n",
                    regime.name, n, r.candidates,
                    IndexBackendToString(backends[b]), r.build_s, r.query_s,
                    static_cast<double>(n) / r.query_s,
                    grid_query / r.query_s);
        if (json != nullptr) {
          std::fprintf(
              json,
              "%s    {\"regime\": \"%s\", \"n\": %d, \"backend\": \"%s\", "
              "\"candidates\": %zu, \"build_seconds\": %.6f, "
              "\"query_seconds\": %.6f, \"query_speedup_vs_grid\": %.3f}",
              first_row ? "" : ",\n", regime.name, n,
              IndexBackendToString(backends[b]), r.candidates, r.build_s,
              r.query_s, grid_query / r.query_s);
          first_row = false;
        }
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_rtree.json\n");
  }
}

}  // namespace
}  // namespace mqa

int main() {
  mqa::bench::InitObservability();
  int max_n = 50000;
  if (const char* cap = std::getenv("MQA_INDEX_BENCH_MAX")) {
    max_n = std::atoi(cap);
  }
  double scale = 1.0;
  if (const char* s = std::getenv("MQA_BENCH_SCALE")) {
    scale = std::atof(s);
    if (!(scale > 0.0) || scale > 1.0) scale = 1.0;
  }
  mqa::RunRegime("city", 0.02, 0.03, {1000, 10000, 50000}, max_n);
  // Paper velocities make most pairs valid; pool emission dominates and
  // the pool itself is quadratic-sized, so 50k is out of reach for any
  // enumeration strategy and the regime stops at 10k.
  mqa::RunRegime("paper", 0.2, 0.3, {1000, 10000}, max_n);
  mqa::RunPoolPhase({static_cast<int>(1000 * scale),
                     static_cast<int>(10000 * scale)},
                    max_n);
  mqa::RunSkewPhase({static_cast<int>(10000 * scale),
                     static_cast<int>(50000 * scale)},
                    max_n);
  return 0;
}
