// Ablation benches for the design choices DESIGN.md calls out:
//
//  A1 — per-cell count predictor: the paper's linear regression vs the
//       last-value and moving-average baselines (end-to-end quality and
//       prediction error);
//  A2 — divide-and-conquer branching factor: the Appendix-C cost-model
//       choice of g vs fixed g in {2, 4, 8, 16, 32};
//  A3 — Eq. 9 confidence level delta of the chance-constrained budget.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

namespace {

using namespace mqa;

bench::VariantResult RunWith(const ArrivalStream& stream,
                             const QualityModel& quality,
                             const bench::PaperDefaults& d,
                             const SimulatorConfig& config,
                             const AssignerOptions& options,
                             AssignerKind kind) {
  (void)d;
  auto assigner = CreateAssigner(kind, options);
  Simulator sim(config, &quality);
  const auto summary = sim.Run(stream, assigner.get());
  bench::VariantResult out;
  out.name = AssignerKindToString(kind);
  out.quality = summary.value().total_quality;
  out.seconds = summary.value().avg_cpu_seconds;
  out.assigned = summary.value().total_assigned;
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations — design choices");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);
  const ArrivalStream synth =
      GenerateSynthetic(bench::MakeSyntheticConfig(d));
  const ArrivalStream real = GenerateCheckin(bench::MakeCheckinConfig(d));

  SimulatorConfig base;
  base.budget = d.budget;
  base.unit_price = d.unit_price;
  base.prediction.gamma = d.gamma;
  base.prediction.window = d.window;
  base.prediction.seed = d.seed;
  base.workers_rejoin = false;  // replay arrivals, like the figure benches

  // ------------------------------------------------- A1: count predictor
  std::printf("A1 — count predictor (GREEDY, check-in workload, B=%.0f):\n",
              bench::CheckinBudget());
  std::printf("%-20s %12s %12s %14s\n", "predictor", "quality",
              "s/instance", "pred.err W(%)");
  const std::pair<CountPredictorKind, const char*> predictors[] = {
      {CountPredictorKind::kLinearRegression, "linear-regression"},
      {CountPredictorKind::kLastValue, "last-value"},
      {CountPredictorKind::kMovingAverage, "moving-average"}};
  for (const auto& [kind, name] : predictors) {
    SimulatorConfig config = base;
    config.budget = bench::CheckinBudget();
    config.prediction.predictor = kind;
    auto assigner = CreateAssigner(AssignerKind::kGreedy);
    Simulator sim(config, &quality);
    const auto summary = sim.Run(real, assigner.get());
    std::printf("%-20s %12.1f %12.4f %14.2f\n", name,
                summary.value().total_quality,
                summary.value().avg_cpu_seconds,
                100.0 * summary.value().avg_worker_prediction_error);
  }

  // --------------------------------------------- A2: D&C branching factor
  std::printf("\nA2 — D&C branching factor g (synthetic workload):\n");
  std::printf("%-20s %12s %12s\n", "g", "quality", "s/instance");
  for (const int g : {0, 2, 4, 8, 16, 32}) {
    AssignerOptions options;
    options.seed = d.seed;
    options.dc_branching = g;
    const auto r = RunWith(synth, quality, d, base, options,
                           AssignerKind::kDivideConquer);
    std::printf("%-20s %12.1f %12.4f\n",
                g == 0 ? "cost-model (auto)" : std::to_string(g).c_str(),
                r.quality, r.seconds);
  }

  // ------------------------------------------------- A3: Eq. 9 delta
  std::printf("\nA3 — Eq. 9 confidence delta (GREEDY, synthetic):\n");
  std::printf("%-20s %12s %12s\n", "delta", "quality", "s/instance");
  for (const double delta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    AssignerOptions options;
    options.seed = d.seed;
    options.delta = delta;
    const auto r =
        RunWith(synth, quality, d, base, options, AssignerKind::kGreedy);
    std::printf("%-20.1f %12.1f %12.4f\n", delta, r.quality, r.seconds);
  }
  return 0;
}
