// Reproduces paper Fig. 15 (synthetic data) and Fig. 26 (WP vs WoP):
// quality score and running time vs the total number m of tasks across
// the R instances.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quality/range_quality.h"

int main() {
  using namespace mqa;
  bench::PrintHeader("Fig. 15 / Fig. 26 — effect of the number m of tasks "
                     "(synthetic data)");
  const bench::PaperDefaults d = bench::Defaults();
  const RangeQualityModel quality(d.q_lo, d.q_hi, d.seed);

  std::vector<std::string> labels;
  std::vector<std::vector<bench::VariantResult>> rows;
  for (const int m : {1000, 3000, 5000, 8000, 10000}) {
    SyntheticConfig config = bench::MakeSyntheticConfig(d);
    config.num_tasks = static_cast<int64_t>(m * bench::Scale());
    labels.push_back("m=" + std::to_string(m / 1000) + "K");
    rows.push_back(bench::RunAllVariants(GenerateSynthetic(config), quality,
                                         d, /*include_wop=*/true));
  }
  bench::PrintSweepTables("tasks m", labels, rows);
  return 0;
}
