// Thread-scaling of the parallel execution subsystem at 10k x 10k (the
// "city" regime of bench/index_bench.cc: velocity 0.02-0.03, deadline
// 1-2, hyperlocal reach): sharded pair generation, greedy end-to-end,
// and divide-and-conquer end-to-end at 1/2/4/8 threads, reporting
// speedup over the sequential path. Every parallel run is checked to
// produce the exact sequential result — the bench doubles as a larger
// determinism test.
//
// Results are hardware-dependent: meaningful speedups need as many real
// cores as threads (the acceptance target is >= 2x at 4 threads on a
// >= 4-core machine; hardware_concurrency is printed for context).
//
// MQA_PARALLEL_BENCH_N overrides the instance size (default 10000).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/divide_conquer.h"
#include "core/greedy.h"
#include "core/valid_pairs.h"
#include "exec/parallel_runner.h"
#include "bench/bench_util.h"
#include "quality/range_quality.h"
#include "tests/test_util.h"

namespace mqa {
namespace {

using testing_util::MakePredictedTask;
using testing_util::MakePredictedWorker;
using testing_util::MakeTask;
using testing_util::MakeWorker;

// City-regime instance: n current workers/tasks plus n/10 predicted of
// each, so the PairStatistics stage (parallelized too) participates.
ProblemInstance CityInstance(int n, const QualityModel* quality, Rng* rng) {
  const int pred = n / 10;
  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(n + pred));
  for (int i = 0; i < n; ++i) {
    workers.push_back(MakeWorker(i, rng->Uniform(), rng->Uniform(),
                                 rng->Uniform(0.02, 0.03)));
  }
  for (int i = 0; i < pred; ++i) {
    workers.push_back(MakePredictedWorker(
        n + i,
        BBox::KernelBox({rng->Uniform(), rng->Uniform()}, 0.02, 0.02),
        rng->Uniform(0.02, 0.03)));
  }
  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(n + pred));
  for (int j = 0; j < n; ++j) {
    tasks.push_back(
        MakeTask(j, rng->Uniform(), rng->Uniform(), rng->Uniform(1.0, 2.0)));
  }
  for (int j = 0; j < pred; ++j) {
    tasks.push_back(MakePredictedTask(
        n + j, BBox::KernelBox({rng->Uniform(), rng->Uniform()}, 0.02, 0.02),
        rng->Uniform(1.0, 2.0)));
  }
  return ProblemInstance(std::move(workers), static_cast<size_t>(n),
                         std::move(tasks), static_cast<size_t>(n), quality,
                         /*unit_price=*/10.0, /*budget=*/300.0);
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measured {
  double pool_s = 0.0;
  double greedy_s = 0.0;  // end-to-end RunGreedy (pool + selection)
  double dc_s = 0.0;      // end-to-end RunDivideConquer
  size_t num_pairs = 0;
  double greedy_quality = 0.0;
  double dc_quality = 0.0;
};

Measured MeasureAt(const ProblemInstance& instance, int threads, int reps) {
  ParallelRunner runner(threads);
  PairPoolOptions options;
  options.thread_pool = runner.pool();

  Measured m;
  m.pool_s = 1e100;
  m.greedy_s = 1e100;
  m.dc_s = 1e100;
  for (int r = 0; r < reps; ++r) {
    double t0 = Now();
    const PairPool pool = BuildPairPool(instance, options);
    m.pool_s = std::min(m.pool_s, Now() - t0);
    m.num_pairs = pool.size();

    t0 = Now();
    const AssignmentResult greedy =
        RunGreedy(instance, /*delta=*/0.5, options);
    m.greedy_s = std::min(m.greedy_s, Now() - t0);
    m.greedy_quality = greedy.total_quality;

    t0 = Now();
    const AssignmentResult dc =
        RunDivideConquer(instance, /*delta=*/0.5, /*branching=*/0, options);
    m.dc_s = std::min(m.dc_s, Now() - t0);
    m.dc_quality = dc.total_quality;
  }
  return m;
}

}  // namespace
}  // namespace mqa

int main() {
  using namespace mqa;
  bench::InitObservability();

  int n = 10000;
  if (const char* env = std::getenv("MQA_PARALLEL_BENCH_N")) {
    n = std::atoi(env);
    if (n <= 0) n = 10000;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "parallel_bench: n=%d (city regime, +%d predicted each side), "
      "hardware_concurrency=%u\n",
      n, n / 10, cores);
  if (cores < 4) {
    std::printf(
        "NOTE: fewer than 4 hardware threads — speedups below are not "
        "meaningful on this machine.\n");
  }

  const RangeQualityModel quality(1.0, 2.0);
  Rng rng(42);
  const ProblemInstance instance = CityInstance(n, &quality, &rng);

  const int reps = n <= 10000 ? 3 : 1;
  const Measured base = MeasureAt(instance, 1, reps);
  std::printf("%8s %12s %10s %12s %10s %12s %10s %12s\n", "threads",
              "pool_s", "speedup", "greedy_s", "speedup", "dc_s", "speedup",
              "pairs");
  std::printf("%8d %12.4f %10s %12.4f %10s %12.4f %10s %12zu\n", 1,
              base.pool_s, "1.00x", base.greedy_s, "1.00x", base.dc_s,
              "1.00x", base.num_pairs);

  for (const int threads : {2, 4, 8}) {
    const Measured m = MeasureAt(instance, threads, reps);
    // The determinism contract, enforced: byte-identical pair counts and
    // total qualities at every thread count.
    if (m.num_pairs != base.num_pairs ||
        m.greedy_quality != base.greedy_quality ||
        m.dc_quality != base.dc_quality) {
      std::fprintf(stderr,
                   "FATAL: results diverged at %d threads "
                   "(pairs %zu vs %zu, greedy %.17g vs %.17g, "
                   "dc %.17g vs %.17g)\n",
                   threads, m.num_pairs, base.num_pairs, m.greedy_quality,
                   base.greedy_quality, m.dc_quality, base.dc_quality);
      return 1;
    }
    std::printf("%8d %12.4f %9.2fx %12.4f %9.2fx %12.4f %9.2fx %12zu\n",
                threads, m.pool_s, base.pool_s / m.pool_s, m.greedy_s,
                base.greedy_s / m.greedy_s, m.dc_s, base.dc_s / m.dc_s,
                m.num_pairs);
  }
  return 0;
}
