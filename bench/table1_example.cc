// Reproduces paper Table I together with Examples 1 and 2 (Figs. 1-2):
// prints the worker-and-task pair table and verifies that the local
// (no-prediction) strategy reaches overall quality 7 at cost 5 while the
// prediction-based strategy reaches quality 8 at cost 4.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/budget.h"
#include "core/greedy.h"
#include "core/valid_pairs.h"

namespace {

using namespace mqa;

struct PairSpec {
  int worker;
  int task;
  double dist;
  double quality;
};

const std::vector<PairSpec> kTableI = {
    {0, 0, 1, 3}, {0, 1, 2, 2}, {0, 2, 4, 2}, {1, 0, 1, 4}, {1, 1, 3, 2},
    {1, 2, 2, 1}, {2, 0, 5, 2}, {2, 1, 3, 1}, {2, 2, 1, 2}};

PairPool MakePool(const std::vector<PairSpec>& specs,
                  const std::vector<bool>& predicted) {
  PairPoolBuilder builder(3, 3);
  for (size_t k = 0; k < specs.size(); ++k) {
    CandidatePair p;
    p.worker_index = specs[k].worker;
    p.task_index = specs[k].task;
    p.cost = Uncertain::Fixed(specs[k].dist);
    p.quality = Uncertain::Fixed(specs[k].quality);
    p.involves_predicted = predicted[k];
    builder.Add(p);
  }
  return std::move(builder).Build();
}

struct Outcome {
  double quality = 0.0;
  double cost = 0.0;
};

Outcome Emitted(const PairPool& pool) {
  std::vector<char> wu(3, 0);
  std::vector<char> tu(3, 0);
  BudgetTracker budget(100.0, 0.5);
  std::vector<int32_t> ids(pool.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  std::vector<int32_t> selected;
  GreedySelect(pool, ids, &wu, &tu, &budget, &selected);
  Outcome out;
  for (const int32_t id : selected) {
    if (pool.InvolvesPredicted(id)) continue;
    out.quality += pool.QualityMean(id);
    out.cost += pool.CostMean(id);
  }
  return out;
}

std::vector<PairSpec> Filter(const std::vector<PairSpec>& specs,
                             const std::vector<std::pair<int, int>>& keep) {
  std::vector<PairSpec> out;
  for (const auto& s : specs) {
    for (const auto& [w, t] : keep) {
      if (s.worker == w && s.task == t) out.push_back(s);
    }
  }
  return out;
}

}  // namespace

int main() {
  mqa::bench::InitObservability();
  std::printf("=== Table I + Examples 1/2 — the paper's running example "
              "===\n\n");
  std::printf("%-14s %10s %14s\n", "pair <wi,tj>", "distance", "quality");
  for (const auto& s : kTableI) {
    std::printf("<w%d, t%d>      %10.0f %14.0f\n", s.worker + 1, s.task + 1,
                s.dist, s.quality);
  }

  // Local strategy (Example 1).
  const auto lp = Filter(kTableI, {{0, 0}, {0, 1}});
  const Outcome l1 = Emitted(MakePool(lp, std::vector<bool>(lp.size(), false)));
  const auto lp1 = Filter(kTableI, {{1, 1}, {1, 2}, {2, 1}, {2, 2}});
  const Outcome l2 =
      Emitted(MakePool(lp1, std::vector<bool>(lp1.size(), false)));

  // Prediction strategy (Example 2).
  std::vector<bool> predicted;
  for (const auto& s : kTableI) {
    predicted.push_back(!(s.worker == 0 && s.task <= 1));
  }
  const Outcome g1 = Emitted(MakePool(kTableI, predicted));
  const auto gp1 = Filter(kTableI, {{1, 0}, {1, 2}, {2, 0}, {2, 2}});
  const Outcome g2 =
      Emitted(MakePool(gp1, std::vector<bool>(gp1.size(), false)));

  std::printf("\n%-28s %10s %10s (paper)\n", "strategy", "quality", "cost");
  std::printf("%-28s %10.0f %10.0f (7 / 5)\n", "local, no prediction",
              l1.quality + l2.quality, l1.cost + l2.cost);
  std::printf("%-28s %10.0f %10.0f (8 / 4)\n", "MQA with prediction",
              g1.quality + g2.quality, g1.cost + g2.cost);

  MQA_CHECK(l1.quality + l2.quality == 7.0 && l1.cost + l2.cost == 5.0)
      << "local strategy diverged from the paper's Example 1";
  MQA_CHECK(g1.quality + g2.quality == 8.0 && g1.cost + g2.cost == 4.0)
      << "prediction strategy diverged from the paper's Example 2";
  std::printf("\nBoth outcomes match the paper exactly.\n");
  return 0;
}
