// Streaming-engine bench: replay a bursty flash-crowd scenario through
// the event-driven StreamingSimulator under each epoch policy and report
// what the batch metrics cannot see — per-epoch assignment latency
// percentiles, arrival -> assignment queue waits, backlog depth.
//
// The bench is self-checking:
//  * the per-instance epoch policy must reproduce the batch Simulator's
//    totals bit-for-bit on the same workload (the streaming determinism
//    contract at bench scale);
//  * parallel workload generation must be byte-identical to sequential
//    generation (and its speedup is reported).
//
// MQA_STREAM_BENCH_N overrides the per-side entity count (default 20000).
// MQA_STREAM_BENCH_THREADS overrides the thread count (default 4).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "core/assigner.h"
#include "exec/parallel_runner.h"
#include "quality/range_quality.h"
#include "sim/simulator.h"
#include "stream/streaming_simulator.h"
#include "workload/scenario.h"
#include "workload/synthetic.h"

namespace mqa {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int64_t EnvSize(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoll(env) : fallback;
}

bool CheckIdentical(const ArrivalStream& a, const ArrivalStream& b) {
  if (a.workers.size() != b.workers.size()) return false;
  for (size_t p = 0; p < a.workers.size(); ++p) {
    if (a.workers[p].size() != b.workers[p].size() ||
        a.tasks[p].size() != b.tasks[p].size()) {
      return false;
    }
    for (size_t i = 0; i < a.workers[p].size(); ++i) {
      const Worker& x = a.workers[p][i];
      const Worker& y = b.workers[p][i];
      if (x.id != y.id || !(x.location == y.location) ||
          x.velocity != y.velocity) {
        return false;
      }
    }
    for (size_t j = 0; j < a.tasks[p].size(); ++j) {
      const Task& x = a.tasks[p][j];
      const Task& y = b.tasks[p][j];
      if (x.id != y.id || !(x.location == y.location) ||
          x.deadline != y.deadline) {
        return false;
      }
    }
  }
  return true;
}

int RunBench() {
  const int64_t n = EnvSize("MQA_STREAM_BENCH_N", 20000);
  const int threads =
      static_cast<int>(EnvSize("MQA_STREAM_BENCH_THREADS", 4));
  const double horizon = 15.0;

  bench::PrintHeader("Streaming engine — bursty scenario, epoch policies, "
                     "queue metrics");
  std::printf("n=%lld per side, horizon %.0f, %d threads "
              "(hardware_concurrency %u)\n\n",
              static_cast<long long>(n), horizon, threads,
              std::thread::hardware_concurrency());

  // --- Self-check + speedup: parallel workload generation. ---
  SyntheticConfig wconfig;
  wconfig.num_workers = n;
  wconfig.num_tasks = n;
  wconfig.num_instances = static_cast<int>(horizon);
  wconfig.seed = 7;
  auto t0 = std::chrono::steady_clock::now();
  const ArrivalStream sequential = GenerateSynthetic(wconfig);
  const double seq_gen = SecondsSince(t0);
  ParallelRunner gen_runner(threads);
  t0 = std::chrono::steady_clock::now();
  const ArrivalStream parallel = GenerateSynthetic(wconfig, gen_runner.pool());
  const double par_gen = SecondsSince(t0);
  if (!CheckIdentical(sequential, parallel)) {
    std::printf("FAIL: parallel workload generation diverged from "
                "sequential\n");
    return 1;
  }
  std::printf("workload gen %lldx2 entities: sequential %.3f s, "
              "%d threads %.3f s (%.2fx) — outputs identical\n",
              static_cast<long long>(n), seq_gen, threads, par_gen,
              par_gen > 0.0 ? seq_gen / par_gen : 0.0);

  const RangeQualityModel quality(1.0, 2.0, 7);
  SimulatorConfig sim_config;
  sim_config.budget = 150.0;
  sim_config.unit_price = 10.0;
  sim_config.prediction.gamma = 12;
  sim_config.workers_rejoin = true;
  sim_config.num_threads = threads;

  // --- Self-check: per-instance streaming == batch, bit for bit. ---
  {
    Simulator batch(sim_config, &quality);
    auto batch_assigner = CreateAssigner(AssignerKind::kGreedy, {.seed = 3});
    const auto batch_summary = batch.Run(sequential, batch_assigner.get());
    if (!batch_summary.ok()) {
      std::printf("FAIL: batch run: %s\n",
                  batch_summary.status().ToString().c_str());
      return 1;
    }
    StreamingConfig stream_config;
    stream_config.sim = sim_config;
    stream_config.sim.maintain_worker_index = true;
    stream_config.policy.kind = EpochPolicyKind::kPerInstance;
    StreamingSimulator streaming(stream_config, &quality);
    auto stream_assigner = CreateAssigner(AssignerKind::kGreedy, {.seed = 3});
    const auto stream_summary = streaming.Run(
        EventQueue::FromArrivalStream(sequential), stream_assigner.get());
    if (!stream_summary.ok()) {
      std::printf("FAIL: streaming run: %s\n",
                  stream_summary.status().ToString().c_str());
      return 1;
    }
    const SimulationSummary& bs = batch_summary.value();
    const StreamSummary& ss = stream_summary.value();
    if (std::memcmp(&bs.total_quality, &ss.total_quality, sizeof(double)) !=
            0 ||
        std::memcmp(&bs.total_cost, &ss.total_cost, sizeof(double)) != 0 ||
        bs.total_assigned != ss.total_assigned) {
      std::printf("FAIL: per-instance streaming diverged from batch "
                  "(quality %.9f vs %.9f, assigned %lld vs %lld)\n",
                  bs.total_quality, ss.total_quality,
                  static_cast<long long>(bs.total_assigned),
                  static_cast<long long>(ss.total_assigned));
      return 1;
    }
    std::printf("self-check: per-instance streaming == batch "
                "(quality %.1f, cost %.1f, assigned %lld)\n\n",
                ss.total_quality, ss.total_cost,
                static_cast<long long>(ss.total_assigned));
  }

  // --- The streaming showcase: bursty flash crowds per epoch policy. ---
  ScenarioConfig scenario_config;
  scenario_config.kind = ScenarioKind::kBursty;
  scenario_config.num_workers = n;
  scenario_config.num_tasks = n;
  scenario_config.horizon = horizon;
  scenario_config.burst_amplitude = 12.0;
  scenario_config.seed = 7;
  const ScenarioStream scenario =
      GenerateScenario(scenario_config, gen_runner.pool());

  struct PolicyRow {
    const char* label;
    EpochPolicy policy;
  };
  std::vector<PolicyRow> rows;
  rows.push_back({"per-instance", {}});
  {
    EpochPolicy p;
    p.kind = EpochPolicyKind::kFixedInterval;
    p.interval = 0.25;
    rows.push_back({"interval 0.25", p});
  }
  {
    EpochPolicy p;
    p.kind = EpochPolicyKind::kEveryKArrivals;
    p.k_arrivals = std::max<int64_t>(64, n / 8);
    rows.push_back({"K arrivals", p});
  }
  {
    EpochPolicy p;
    p.kind = EpochPolicyKind::kAdaptiveBacklog;
    p.backlog_threshold = std::max<int64_t>(64, n / 10);
    p.max_interval = 2.0;
    rows.push_back({"adaptive", p});
  }

  // Machine-readable per-policy rows for BENCH_stream.json (CI history
  // and the perf-regression gate).
  struct PolicyResult {
    const char* label;
    size_t epochs;
    int64_t events;
    int64_t assigned;
    int64_t expired;
    double quality;
    double run_seconds;
    double latency_p50;
    double latency_p99;
    double wait_p50;
    double wait_p99;
    double mean_backlog;
    int64_t max_backlog;
  };
  std::vector<PolicyResult> results;

  std::printf("%-14s %7s %9s %9s %9s %8s %8s %9s %8s %8s\n", "policy",
              "epochs", "assigned", "expired", "quality", "lat p50",
              "lat p99", "wait p50", "wait p99", "maxlog");
  for (const PolicyRow& row : rows) {
    StreamingConfig config;
    config.sim = sim_config;
    config.sim.maintain_worker_index = true;
    config.policy = row.policy;
    config.horizon = horizon;
    StreamingSimulator sim(config, &quality);
    auto assigner = CreateAssigner(AssignerKind::kGreedy, {.seed = 3});
    t0 = std::chrono::steady_clock::now();
    const auto summary =
        sim.Run(EventQueue::FromScenario(scenario), assigner.get());
    const double run_seconds = SecondsSince(t0);
    if (!summary.ok()) {
      std::printf("FAIL: %s: %s\n", row.label,
                  summary.status().ToString().c_str());
      return 1;
    }
    const StreamSummary& s = summary.value();
    std::printf("%-14s %7zu %9lld %9lld %9.0f %8.4f %8.4f %9.2f %8.2f "
                "%8lld\n",
                row.label, s.per_epoch.size(),
                static_cast<long long>(s.total_assigned),
                static_cast<long long>(s.total_expired), s.total_quality,
                s.p50_epoch_latency, s.p99_epoch_latency, s.p50_queue_wait,
                s.p99_queue_wait, static_cast<long long>(s.max_backlog));

    PolicyResult r;
    r.label = row.label;
    r.epochs = s.per_epoch.size();
    r.events = 0;
    for (const EpochStreamMetrics& e : s.per_epoch) {
      r.events += e.ingested_workers + e.ingested_tasks;
    }
    r.assigned = s.total_assigned;
    r.expired = s.total_expired;
    r.quality = s.total_quality;
    r.run_seconds = run_seconds;
    r.latency_p50 = s.p50_epoch_latency;
    r.latency_p99 = s.p99_epoch_latency;
    r.wait_p50 = s.p50_queue_wait;
    r.wait_p99 = s.p99_queue_wait;
    r.mean_backlog = s.mean_backlog;
    r.max_backlog = s.max_backlog;
    results.push_back(r);
  }

  // Machine-readable record for CI history and the regression gate
  // (scripts/check_bench_regression.py): the integer count fields are
  // deterministic (exact-matched against the committed baseline at the
  // same n), the *_seconds fields are tolerance-gated timings.
  if (FILE* json = std::fopen("BENCH_stream.json", "w")) {
    std::fprintf(json, "{\n  \"regime\": \"bursty-flash-crowd\",\n");
    std::fprintf(json, "  \"provenance\": {%s},\n",
                 bench::ProvenanceFragment().c_str());
    std::fprintf(json, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PolicyResult& r = results[i];
      std::fprintf(
          json,
          "    {\"policy\": \"%s\", \"n\": %lld, \"epochs\": %zu, "
          "\"events\": %lld, \"assigned\": %lld, \"expired\": %lld, "
          "\"quality\": %.6f, \"run_seconds\": %.6f, "
          "\"events_per_second\": %.0f, \"latency_p50_seconds\": %.6f, "
          "\"latency_p99_seconds\": %.6f, \"wait_p50\": %.6f, "
          "\"wait_p99\": %.6f, \"mean_backlog\": %.2f, "
          "\"max_backlog\": %lld}%s\n",
          r.label, static_cast<long long>(n), r.epochs,
          static_cast<long long>(r.events),
          static_cast<long long>(r.assigned),
          static_cast<long long>(r.expired), r.quality, r.run_seconds,
          r.run_seconds > 0.0 ? static_cast<double>(r.events) / r.run_seconds
                              : 0.0,
          r.latency_p50, r.latency_p99, r.wait_p50, r.wait_p99,
          r.mean_backlog, static_cast<long long>(r.max_backlog),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_stream.json\n");
  } else {
    std::fprintf(stderr, "WARNING: cannot write BENCH_stream.json\n");
  }

  std::printf("\nall self-checks passed\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main() { return mqa::RunBench(); }
